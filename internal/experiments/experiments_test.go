package experiments

import (
	"strings"
	"testing"

	"refidem/internal/engine"
	"refidem/internal/workloads"
)

func TestFigure5(t *testing.T) {
	rows, err := Figure5(engine.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("got %d rows", len(rows))
	}
	over := 0
	for _, r := range rows {
		if r.Total > 0.6 {
			over++
		}
		if r.Total < 0 || r.Total > 1 {
			t.Errorf("%s: total %v out of range", r.Bench, r.Total)
		}
		sum := r.ReadOnly + r.Private + r.SharedDep
		if d := r.Total - sum; d > 0.01 || d < -0.01 {
			t.Errorf("%s: categories sum %.3f != total %.3f", r.Bench, sum, r.Total)
		}
	}
	if over != 7 {
		t.Errorf("benchmarks over 60%% = %d, want 7 (paper headline)", over)
	}
	s := RenderFigure5(rows)
	for _, want := range []string{"Figure 5", "TOMCATV", "fully parallel", "7 of 13"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigureLoops(t *testing.T) {
	cfg := engine.DefaultConfig()
	wantCounts := map[int]int{6: 3, 7: 2, 8: 3, 9: 3}
	for fig, want := range wantCounts {
		results, err := FigureLoops(fig, cfg, 0)
		if err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
		if len(results) != want {
			t.Errorf("fig %d: %d loops, want %d", fig, len(results), want)
		}
		for _, lr := range results {
			if lr.CaseSpeedup <= lr.HoseSpeedup {
				t.Errorf("fig %d %s: CASE %.2f <= HOSE %.2f", fig, lr.Spec, lr.CaseSpeedup, lr.HoseSpeedup)
			}
		}
		s := RenderFigureLoops(fig, results)
		if !strings.Contains(s, "(a)") || !strings.Contains(s, "(b)") {
			t.Errorf("fig %d render missing panels", fig)
		}
		if fig == 9 && !strings.Contains(s, "(c)") {
			t.Error("fig 9 render missing sub-category panel")
		}
	}
}

func TestAblationCapacity(t *testing.T) {
	spec, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	pts, err := AblationCapacity(spec, []int{16, 128, 1024}, engine.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// With enough capacity HOSE stops overflowing and catches up.
	if pts[2].HoseOverflows != 0 {
		t.Errorf("1024-entry HOSE still overflows: %d", pts[2].HoseOverflows)
	}
	if pts[0].HoseOverflows == 0 {
		t.Error("16-entry HOSE should overflow")
	}
	if pts[0].HoseSpeedup >= pts[2].HoseSpeedup {
		t.Errorf("HOSE should improve with capacity: %.2f vs %.2f",
			pts[0].HoseSpeedup, pts[2].HoseSpeedup)
	}
	// CASE is insensitive to capacity on this loop (nothing overflows).
	if d := pts[0].CaseSpeedup - pts[2].CaseSpeedup; d > 0.3 || d < -0.3 {
		t.Errorf("CASE should be capacity-insensitive: %.2f vs %.2f",
			pts[0].CaseSpeedup, pts[2].CaseSpeedup)
	}
	if s := RenderCapacity(spec.String(), pts); !strings.Contains(s, "capacity") {
		t.Error("render broken")
	}
}

func TestAblationCategories(t *testing.T) {
	spec, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	rows, err := AblationCategories(spec, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	none, all := rows[0], rows[len(rows)-1]
	if none.IdemFrac != 0 {
		t.Errorf("none-enabled run should have 0 idempotent refs, got %.2f", none.IdemFrac)
	}
	if all.Speedup <= none.Speedup {
		t.Errorf("full labeling %.2f should beat none %.2f", all.Speedup, none.Speedup)
	}
	// Read-only labeling alone should recover most of the benefit on a
	// read-only-dominated loop.
	ro := rows[1]
	if ro.Speedup <= none.Speedup {
		t.Errorf("read-only labeling should help: %.2f vs %.2f", ro.Speedup, none.Speedup)
	}
	if s := RenderCategories(spec.String(), rows); !strings.Contains(s, "read-only") {
		t.Error("render broken")
	}
}

func TestAblationProcessors(t *testing.T) {
	spec, _ := workloads.FindLoop("MGRID", "RESID_DO600")
	pts, err := AblationProcessors(spec, []int{1, 2, 4, 8}, engine.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatal("wrong point count")
	}
	// CASE should scale with processors on a fully-independent loop.
	if pts[3].CaseSpeedup <= pts[0].CaseSpeedup {
		t.Errorf("CASE should scale: 1p=%.2f 8p=%.2f", pts[0].CaseSpeedup, pts[3].CaseSpeedup)
	}
	if s := RenderProcessors(spec.String(), pts); !strings.Contains(s, "processors") {
		t.Error("render broken")
	}
}

func TestRunLoopRejectsNothing(t *testing.T) {
	for _, spec := range workloads.NamedLoops() {
		if _, err := RunLoop(spec, engine.DefaultConfig()); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
}
