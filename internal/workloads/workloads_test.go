package workloads

import (
	"testing"

	"refidem/internal/engine"
	"refidem/internal/idem"
	"refidem/internal/ir"
)

// runLoop labels and executes a program under all three models.
func runLoop(t *testing.T, p *ir.Program) (map[*ir.Region]*idem.Result, *engine.Result, *engine.Result, *engine.Result) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: validate: %v", p.Name, err)
	}
	labs := idem.LabelProgram(p)
	for r, res := range labs {
		if errs := res.CheckTheorems(); len(errs) > 0 {
			t.Fatalf("%s region %s: %v", p.Name, r.Name, errs)
		}
	}
	cfg := engine.DefaultConfig()
	seq, err := engine.RunSequential(p, cfg)
	if err != nil {
		t.Fatalf("%s: seq: %v", p.Name, err)
	}
	hose, err := engine.RunSpeculative(p, labs, cfg, engine.HOSE)
	if err != nil {
		t.Fatalf("%s: HOSE: %v", p.Name, err)
	}
	caseR, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
	if err != nil {
		t.Fatalf("%s: CASE: %v", p.Name, err)
	}
	if err := engine.LiveOutMismatch(p, labs, seq, hose); err != nil {
		t.Errorf("%s: HOSE wrong: %v", p.Name, err)
	}
	if err := engine.LiveOutMismatch(p, labs, seq, caseR); err != nil {
		t.Errorf("%s: CASE wrong: %v", p.Name, err)
	}
	return labs, seq, hose, caseR
}

func dynFraction(res *engine.Result) float64 {
	if res.Stats.DynRefs == 0 {
		return 0
	}
	return float64(res.Stats.IdemRefs) / float64(res.Stats.DynRefs)
}

func TestNamedLoopsAreWellFormed(t *testing.T) {
	if len(NamedLoops()) != 11 {
		t.Fatalf("expected 11 named loops, got %d", len(NamedLoops()))
	}
	for _, spec := range NamedLoops() {
		p := spec.Program()
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
		if spec.Fig < 6 || spec.Fig > 9 {
			t.Errorf("%s: figure %d out of range", spec, spec.Fig)
		}
	}
	if _, ok := FindLoop("TOMCATV", "MAIN_DO80"); !ok {
		t.Error("FindLoop failed")
	}
	if _, ok := FindLoop("NOPE", "X"); ok {
		t.Error("FindLoop found a ghost")
	}
}

func TestNamedLoopsCorrectUnderAllModels(t *testing.T) {
	for _, spec := range NamedLoops() {
		runLoop(t, spec.Program())
	}
}

// TestFigure6Shape: read-only loops — the dominant category is read-only,
// HOSE overflows its speculative storage, CASE relieves the pressure and
// beats both HOSE and the uniprocessor.
func TestFigure6Shape(t *testing.T) {
	for _, spec := range NamedLoops() {
		if spec.Fig != 6 {
			continue
		}
		p := spec.Program()
		_, seq, hose, caseR := runLoop(t, p)
		ro := float64(caseR.Stats.RefsByCategory[idem.CatReadOnly]) / float64(caseR.Stats.DynRefs)
		if ro < 0.5 {
			t.Errorf("%s: read-only fraction %.2f, want > 0.5", spec, ro)
		}
		if hose.Stats.Overflows == 0 {
			t.Errorf("%s: HOSE should overflow", spec)
		}
		if caseR.Stats.Overflows != 0 {
			t.Errorf("%s: CASE should not overflow (got %d)", spec, caseR.Stats.Overflows)
		}
		hoseSp := float64(seq.Cycles) / float64(hose.Cycles)
		caseSp := float64(seq.Cycles) / float64(caseR.Cycles)
		if caseSp <= hoseSp {
			t.Errorf("%s: CASE speedup %.2f should beat HOSE %.2f", spec, caseSp, hoseSp)
		}
		if caseSp < 1.8 {
			t.Errorf("%s: CASE speedup %.2f, want > 1.8", spec, caseSp)
		}
	}
}

// TestFigure7Shape: private loops — private is a large category and CASE
// posts a modest gain over HOSE (the paper's "small speedup gains").
func TestFigure7Shape(t *testing.T) {
	for _, spec := range NamedLoops() {
		if spec.Fig != 7 {
			continue
		}
		p := spec.Program()
		_, seq, hose, caseR := runLoop(t, p)
		priv := float64(caseR.Stats.RefsByCategory[idem.CatPrivate]) / float64(caseR.Stats.DynRefs)
		if priv < 0.35 {
			t.Errorf("%s: private fraction %.2f, want > 0.35", spec, priv)
		}
		hoseSp := float64(seq.Cycles) / float64(hose.Cycles)
		caseSp := float64(seq.Cycles) / float64(caseR.Cycles)
		if caseSp <= hoseSp {
			t.Errorf("%s: CASE %.2f should beat HOSE %.2f", spec, caseSp, hoseSp)
		}
		if hoseSp < 1.2 {
			t.Errorf("%s: HOSE speedup %.2f too low — these loops fit in speculative storage", spec, hoseSp)
		}
	}
}

// TestFigure8Shape: shared-dependent loops — more than 50% of references
// are shared-dependent idempotent, "one of the most advanced qualities"
// of the technique.
func TestFigure8Shape(t *testing.T) {
	for _, spec := range NamedLoops() {
		if spec.Fig != 8 {
			continue
		}
		p := spec.Program()
		_, seq, hose, caseR := runLoop(t, p)
		sd := float64(caseR.Stats.RefsByCategory[idem.CatSharedDependent]) / float64(caseR.Stats.DynRefs)
		if sd < 0.5 {
			t.Errorf("%s: shared-dependent fraction %.2f, want > 0.5", spec, sd)
		}
		if hose.Stats.Overflows == 0 {
			t.Errorf("%s: HOSE should overflow", spec)
		}
		caseSp := float64(seq.Cycles) / float64(caseR.Cycles)
		hoseSp := float64(seq.Cycles) / float64(hose.Cycles)
		if caseSp <= hoseSp || caseSp < 1.8 {
			t.Errorf("%s: speedups CASE %.2f vs HOSE %.2f", spec, caseSp, hoseSp)
		}
	}
}

// TestFigure9Shape: fully-independent regions — everything is idempotent,
// CASE tracks nothing and dramatically outruns an overflowing HOSE.
func TestFigure9Shape(t *testing.T) {
	for _, spec := range NamedLoops() {
		if spec.Fig != 9 {
			continue
		}
		p := spec.Program()
		labs, seq, hose, caseR := runLoop(t, p)
		for _, res := range labs {
			if !res.FullyIndependent {
				t.Errorf("%s: region should be fully independent", spec)
			}
		}
		if f := dynFraction(caseR); f != 1 {
			t.Errorf("%s: idempotent fraction %.2f, want 1.0", spec, f)
		}
		if hose.Stats.Overflows == 0 {
			t.Errorf("%s: HOSE should overflow", spec)
		}
		if caseR.Stats.PeakSpecOccupancy != 0 {
			t.Errorf("%s: CASE peak occupancy %d, want 0", spec, caseR.Stats.PeakSpecOccupancy)
		}
		caseSp := float64(seq.Cycles) / float64(caseR.Cycles)
		hoseSp := float64(seq.Cycles) / float64(hose.Cycles)
		if caseSp < 2 || caseSp <= hoseSp {
			t.Errorf("%s: CASE %.2f HOSE %.2f", spec, caseSp, hoseSp)
		}
	}
}

func TestSuiteShapes(t *testing.T) {
	suite := Suite()
	if len(suite) != 13 {
		t.Fatalf("suite has %d benchmarks, want 13", len(suite))
	}
	over60 := 0
	fractions := map[string]float64{}
	for _, b := range suite {
		if b.FullyParallel {
			fractions[b.Name] = 0
			continue
		}
		p := b.Program()
		_, _, _, caseR := runLoop(t, p)
		f := dynFraction(caseR)
		fractions[b.Name] = f
		if f > 0.6 {
			over60++
		}
		// Read-only must be the largest idempotent category overall
		// where present.
		s := caseR.Stats
		ro := s.RefsByCategory[idem.CatReadOnly]
		if b.Mix.RO >= 4 && (ro < s.RefsByCategory[idem.CatPrivate] || ro < s.RefsByCategory[idem.CatSharedDependent]) {
			t.Errorf("%s: read-only (%d) should dominate (priv %d, sd %d)",
				b.Name, ro, s.RefsByCategory[idem.CatPrivate], s.RefsByCategory[idem.CatSharedDependent])
		}
	}
	// Paper headline: "in 7 out of the 13 benchmarks more than 60% of
	// these references are idempotent".
	if over60 != 7 {
		t.Errorf("benchmarks over 60%% idempotent = %d, want 7: %v", over60, fractions)
	}
	for _, name := range []string{"SWIM", "TRFD", "ARC2D"} {
		if fractions[name] != 0 {
			t.Errorf("%s is fully parallel: fraction should be 0", name)
		}
	}
	if fractions["FPPPP"] > 0.3 {
		t.Errorf("FPPPP is unstructured: fraction %.2f should be small", fractions["FPPPP"])
	}
}

func TestFullyParallelProgramsAreFullyIndependent(t *testing.T) {
	for _, b := range Suite() {
		if !b.FullyParallel {
			continue
		}
		p := b.Program()
		labs := idem.LabelProgram(p)
		for _, res := range labs {
			if !res.FullyIndependent {
				t.Errorf("%s: parallel benchmark region not fully independent", b.Name)
			}
		}
	}
}

func TestFigureExamplesStillValid(t *testing.T) {
	for _, p := range []*ir.Program{IntroExample(), Figure2(), Figure3(), ButsDO1(6)} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// TestButsDescendingDelta documents the Figure 4 discrepancy (DESIGN.md
// §3): on the original descending loop, the execution-order-precise
// analysis finds a cross-iteration flow dependence into S1's plane-(k+1)
// read (iteration k+1 runs first and produces the plane), so that read is
// speculative — whereas on the normalized ascending loop (ButsDO1) it is
// idempotent, matching the paper's labels. Both variants must still
// execute correctly under speculation.
func TestButsDescendingDelta(t *testing.T) {
	p := ButsDO1Descending(6)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	labs := idem.LabelProgram(p)
	r := p.Regions[0]
	res := labs[r]
	v := p.Var("v")
	// Find the S1 read of plane k+1: its 4th subscript is k+1.
	var planeRead *ir.Ref
	for _, ref := range r.VarRefs(v) {
		if ref.Access != ir.Read || len(ref.Subs) != 4 {
			continue
		}
		if a, ok := ir.AffineOf(ref.Subs[3]); ok && a.Const == 1 && a.Coefficient("k") == 1 {
			planeRead = ref
		}
	}
	if planeRead == nil {
		t.Fatal("plane k+1 read not found")
	}
	if res.Label(planeRead) != idem.Speculative {
		t.Errorf("descending BUTS: plane k+1 read should be speculative (cross flow sink), got %v",
			res.Label(planeRead))
	}
	// On the ascending variant the same read is idempotent.
	p2 := ButsDO1(6)
	labs2 := idem.LabelProgram(p2)
	r2 := p2.Regions[0]
	res2 := labs2[r2]
	for _, ref := range r2.VarRefs(p2.Var("v")) {
		if ref.Access != ir.Read || len(ref.Subs) != 4 {
			continue
		}
		if a, ok := ir.AffineOf(ref.Subs[3]); ok && a.Const == 1 && a.Coefficient("k") == 1 {
			if res2.Label(ref) != idem.Idempotent {
				t.Errorf("ascending BUTS: plane k+1 read should be idempotent, got %v", res2.Label(ref))
			}
		}
	}
	// Correctness holds either way.
	runLoop(t, p)
	runLoop(t, p2)
}
