// Package workloads provides the programs used by the test suite, the
// examples and the experiment harness: reconstructions of the paper's
// worked examples (Figures 1-4) and the synthetic benchmark suite standing
// in for the paper's SPEC FP / Perfect club benchmarks (see DESIGN.md §3
// for the substitution rationale).
package workloads

import (
	"refidem/internal/ir"
)

// IntroExample reconstructs Figure 1: a two-segment region where B is
// read-only, A carries a cross-segment flow dependence (write in segment
// 1, read in segment 2), and C is private to segment 2.
//
// The paper's walkthrough: all B references are idempotent (read-only);
// the write to A in segment 1 is idempotent (a first write that is only a
// dependence source); the read of A in segment 2 is the dependence sink
// and must remain speculative; all C references are idempotent (private).
func IntroExample() *ir.Program {
	p := ir.NewProgram("intro")
	a := p.AddVar("A")
	b := p.AddVar("B")
	c := p.AddVar("C")
	t1 := p.AddVar("t1")
	t2 := p.AddVar("t2")

	s1 := &ir.Segment{ID: 0, Name: "seg1", Succs: []int{1}, Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(t1), RHS: ir.Rd(b)},
		&ir.Assign{LHS: ir.Wr(a), RHS: ir.AddE(ir.Rd(t1), ir.C(1))},
	}}
	s2 := &ir.Segment{ID: 1, Name: "seg2", Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(c), RHS: ir.AddE(ir.Rd(b), ir.C(2))},
		&ir.Assign{LHS: ir.Wr(t2), RHS: ir.AddE(ir.Rd(c), ir.Rd(a))},
	}}
	r := &ir.Region{Name: "intro", Kind: ir.CFGRegion, Segments: []*ir.Segment{s1, s2}}
	r.Ann.LiveOut = map[string]bool{"A": true, "t2": true}
	r.Finalize()
	p.AddRegion(r)
	return p
}

// Figure2 reconstructs the example region of Figure 2: five segments
// R0..R4 with R1 branching to the exclusive segments R2 and R3, both
// rejoining at R4.
//
// The statements are arranged so that every fact the paper states about
// the example holds:
//
//	RFW(R0)={C,N,J}, RFW(R1)={E,J}, RFW(R2)={A}, RFW(R3)={A}, RFW(R4)={F};
//	B's writes are not RFW (conditional in R2; path through R2 may skip
//	the write in R3); K[E]'s writes are not RFW (uncertain address);
//	H's write in R4 is preceded by a read;
//	J in R1 and F in R4 are RFW but not idempotent (sinks of output and
//	anti dependences from R0); the reads of N in R2 and E in R3 are
//	speculative (cross-segment flow sinks); G reads, the F read in R0 and
//	the H read in R4 are independent reads (idempotent by Lemma 4); the
//	reads of N and C in R0 and A in R3 are covered reads (Lemma 6).
//
// One delta from the paper's prose, documented in DESIGN.md: the covered
// read of F in R4 follows a *speculative* write (F's write is the sink of
// the anti dependence from R0), so by Theorem 2 (and LC3) it must be
// speculative; the paper's example text lists it under Lemma 6, but
// Lemma 6 itself requires the covering write to be idempotent.
func Figure2() *ir.Program {
	p := ir.NewProgram("figure2")
	A := p.AddVar("A")
	B := p.AddVar("B")
	C := p.AddVar("C")
	E := p.AddVar("E")
	F := p.AddVar("F")
	G := p.AddVar("G")
	H := p.AddVar("H")
	J := p.AddVar("J")
	N := p.AddVar("N")
	K := p.AddVar("K", 8)
	t0 := p.AddVar("t0")
	t1 := p.AddVar("t1")
	t2 := p.AddVar("t2")
	t3 := p.AddVar("t3")
	t4 := p.AddVar("t4")
	t5 := p.AddVar("t5")
	t6 := p.AddVar("t6")
	t7 := p.AddVar("t7")

	r0 := &ir.Segment{ID: 0, Name: "R0", Succs: []int{1}, Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(C), RHS: ir.AddE(ir.Rd(G), ir.C(1))}, // C = G + ...
		&ir.Assign{LHS: ir.Wr(t0), RHS: ir.Rd(C)},                  // ... = C (covered)
		&ir.Assign{LHS: ir.Wr(N), RHS: ir.C(2)},                    // N = ...
		&ir.Assign{LHS: ir.Wr(t1), RHS: ir.Rd(N)},                  // ... = N (covered)
		&ir.Assign{LHS: ir.Wr(J), RHS: ir.C(3)},                    // J = ...
		&ir.Assign{LHS: ir.Wr(t2), RHS: ir.Rd(F)},                  // ... = F (anti source)
	}}
	r1 := &ir.Segment{ID: 1, Name: "R1", Succs: []int{2, 3}, Branch: ir.Rd(G), Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(E), RHS: ir.C(4)}, // E = ...
		&ir.Assign{LHS: ir.Wr(J), RHS: ir.C(5)}, // J = ... (output sink from R0)
	}}
	r2 := &ir.Segment{ID: 2, Name: "R2", Succs: []int{4}, Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(A), RHS: ir.C(6)}, // A = ...
		&ir.If{Cond: ir.Rd(A), Then: []ir.Stmt{ // IF(A) B = ... ENDIF
			&ir.Assign{LHS: ir.Wr(B), RHS: ir.C(7)},
		}},
		&ir.Assign{LHS: ir.Wr(t3), RHS: ir.Rd(N)},         // ... = N (flow sink)
		&ir.Assign{LHS: ir.Wr(K, ir.Rd(E)), RHS: ir.C(8)}, // K(E) = ...
	}}
	r3 := &ir.Segment{ID: 3, Name: "R3", Succs: []int{4}, Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(A), RHS: ir.C(9)},                     // A = ...
		&ir.Assign{LHS: ir.Wr(t4), RHS: ir.Rd(A)},                   // ... = A (covered)
		&ir.Assign{LHS: ir.Wr(t5), RHS: ir.AddE(ir.Rd(E), ir.C(1))}, // = E + (flow sink)
		&ir.Assign{LHS: ir.Wr(K, ir.Rd(E)), RHS: ir.C(10)},          // K(E) = ...
		&ir.Assign{LHS: ir.Wr(B), RHS: ir.C(11)},                    // B = ...
	}}
	r4 := &ir.Segment{ID: 4, Name: "R4", Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(F), RHS: ir.C(12)},                           // F = ... (anti sink from R0)
		&ir.Assign{LHS: ir.Wr(t6), RHS: ir.Rd(F)},                          // ... = F
		&ir.Assign{LHS: ir.Wr(t7), RHS: ir.Op(ir.Div, ir.Rd(G), ir.Rd(H))}, // G/H (H read exposed)
		&ir.Assign{LHS: ir.Wr(H), RHS: ir.C(13)},                           // H = ... (preceded by read)
	}}

	r := &ir.Region{Name: "figure2", Kind: ir.CFGRegion,
		Segments: []*ir.Segment{r0, r1, r2, r3, r4}}
	r.Ann.LiveOut = map[string]bool{
		"A": true, "B": true, "C": true, "E": true, "F": true,
		"H": true, "J": true, "N": true, "K": true,
	}
	r.Finalize()
	p.AddRegion(r)
	return p
}

// Figure3 reconstructs the re-occurring-first-write walkthrough of
// Figure 3: a seven-segment region (1 branching to two chains 2-4 and
// 3-5, rejoining at 6, then 7) analyzed for the variables x, y and z.
//
// Expected outcome, from the paper: the writes to x in segments 6 and 7
// are not RFW (exposed read in segment 4); the write to z in segment 6 is
// not RFW (exposed read in segment 2); all writes to y are RFW.
func Figure3() *ir.Program {
	p := ir.NewProgram("figure3")
	x := p.AddVar("x")
	y := p.AddVar("y")
	z := p.AddVar("z")
	s2t := p.AddVar("t2")
	s4t := p.AddVar("t4")
	s6t := p.AddVar("t6")

	segs := []*ir.Segment{
		{ID: 1, Name: "s1", Succs: []int{2, 3}, Branch: ir.C(1), Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(1)}, // x = ...
		}},
		{ID: 2, Name: "s2", Succs: []int{4}, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(2)},    // x = ...
			&ir.Assign{LHS: ir.Wr(s2t), RHS: ir.Rd(z)}, // ... = z (exposed read)
			&ir.Assign{LHS: ir.Wr(y), RHS: ir.C(3)},    // y = ...
		}},
		{ID: 3, Name: "s3", Succs: []int{5}, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(4)}, // x = ...
			&ir.Assign{LHS: ir.Wr(y), RHS: ir.C(5)}, // y = ...
		}},
		{ID: 4, Name: "s4", Succs: []int{6}, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(s4t), RHS: ir.Rd(x)}, // ... = x (exposed read)
		}},
		{ID: 5, Name: "s5", Succs: []int{6}, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(y), RHS: ir.C(6)}, // y = ...
		}},
		{ID: 6, Name: "s6", Succs: []int{7}, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(y), RHS: ir.C(7)},    // y = ...
			&ir.Assign{LHS: ir.Wr(s6t), RHS: ir.Rd(y)}, // ... = y (covered)
			&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(8)},    // x = ...
			&ir.Assign{LHS: ir.Wr(z), RHS: ir.C(9)},    // z = ...
		}},
		{ID: 7, Name: "s7", Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(10)}, // x = ...
		}},
	}
	r := &ir.Region{Name: "figure3", Kind: ir.CFGRegion, Segments: segs}
	r.Ann.LiveOut = map[string]bool{"x": true, "y": true, "z": true}
	r.Finalize()
	p.AddRegion(r)
	return p
}

// ButsDO1 reconstructs the APPLU BUTS_DO1 loop of Figure 4, loop-
// normalized to ascending order (see DESIGN.md §3 for why): the region is
// the k loop, each iteration is a segment, and v is the only shared
// variable. S1 gathers three v cells into the private temporary t; S2
// updates v(m,i,j,k) by a read-modify-write.
//
//	region buts_do1 loop k = 2..nz-1:
//	  for j, for i:
//	    for m: t[m] = v[m,i,j,k+1] + v[m,i,j+1,k] + v[m,i+1,j,k]   (S1)
//	    for m: v[m,i,j,k] = v[m,i,j,k] - t[m]/2                    (S2)
//
// Expected labels (Theorems 1 and 2): the three S1 reads are idempotent
// (they are sources of anti dependences only); the S2 write is speculative
// (it is the sink of the cross-segment anti dependences and of the intra-
// segment anti dependence from its own right-hand-side read, so it is not
// an RFW); t references are private.
func ButsDO1(n int) *ir.Program {
	return butsDO1(n, false)
}

// ButsDO1Descending is the loop exactly as printed in Figure 4, with the
// k, j and i loops running downward. The execution-order-precise
// dependence analysis then additionally discovers that the S1 read of
// plane k+1 is the sink of a cross-iteration *flow* dependence (iteration
// k+1 executes first and writes the plane that iteration k reads), so
// that read must stay speculative — unlike in the normalized form, where
// the paper's published labels are reproduced. DESIGN.md §3 discusses the
// discrepancy.
func ButsDO1Descending(n int) *ir.Program {
	return butsDO1(n, true)
}

func butsDO1(n int, descending bool) *ir.Program {
	if n < 4 {
		n = 4
	}
	name := "applu_buts_do1"
	if descending {
		name = "applu_buts_do1_desc"
	}
	p := ir.NewProgram(name)
	v := p.AddVar("v", 5, n, n, n)
	tv := p.AddVar("t", 5)

	jFrom, jTo, iFrom, iTo, step := 1, n-2, 1, n-2, 1
	kFrom, kTo := 1, n-2
	if descending {
		jFrom, jTo, iFrom, iTo, step = n-2, 1, n-2, 1, -1
		kFrom, kTo = n-2, 1
	}
	body := []ir.Stmt{
		&ir.For{Index: "j", From: jFrom, To: jTo, Step: step, Body: []ir.Stmt{
			&ir.For{Index: "i", From: iFrom, To: iTo, Step: step, Body: []ir.Stmt{
				&ir.For{Index: "m", From: 0, To: 4, Step: 1, Body: []ir.Stmt{
					// S1
					&ir.Assign{LHS: ir.Wr(tv, ir.Idx("m")), RHS: ir.AddE(
						ir.AddE(
							ir.Rd(v, ir.Idx("m"), ir.Idx("i"), ir.Idx("j"), ir.AddE(ir.Idx("k"), ir.C(1))),
							ir.Rd(v, ir.Idx("m"), ir.Idx("i"), ir.AddE(ir.Idx("j"), ir.C(1)), ir.Idx("k")),
						),
						ir.Rd(v, ir.Idx("m"), ir.AddE(ir.Idx("i"), ir.C(1)), ir.Idx("j"), ir.Idx("k")),
					)},
				}},
				&ir.For{Index: "m", From: 0, To: 4, Step: 1, Body: []ir.Stmt{
					// S2
					&ir.Assign{LHS: ir.Wr(v, ir.Idx("m"), ir.Idx("i"), ir.Idx("j"), ir.Idx("k")),
						RHS: ir.SubE(
							ir.Rd(v, ir.Idx("m"), ir.Idx("i"), ir.Idx("j"), ir.Idx("k")),
							ir.Op(ir.Div, ir.Rd(tv, ir.Idx("m")), ir.C(2)),
						)},
				}},
			}},
		}},
	}
	r := &ir.Region{
		Name: "buts_do1", Kind: ir.LoopRegion, Index: "k", From: kFrom, To: kTo, Step: step,
		Segments: []*ir.Segment{{ID: 0, Name: "iter", Body: body}},
	}
	r.Ann.Private = map[string]bool{"t": true}
	r.Ann.LiveOut = map[string]bool{"v": true}
	r.Finalize()
	p.AddRegion(r)
	return p
}
