package workloads

import (
	"fmt"

	"refidem/internal/ir"
	"refidem/internal/lang"
)

// LoopSpec is one named loop of the paper's evaluation (Figures 6-9),
// written in the mini language. Bench and Name follow the paper's
// BENCH LOOP_DOxxx naming; Fig records which figure the loop appears in.
type LoopSpec struct {
	Bench string
	Name  string
	Fig   int
	Src   string
}

// Program parses the loop into a fresh ir.Program.
func (s LoopSpec) Program() *ir.Program { return lang.MustParse(s.Src) }

// String returns "BENCH NAME".
func (s LoopSpec) String() string { return fmt.Sprintf("%s %s", s.Bench, s.Name) }

// NamedLoops returns the loops behind Figures 6-9, in figure order.
//
// The sources are synthetic reconstructions (see DESIGN.md §3): each
// mirrors the dependence and reference structure the paper describes for
// the original Fortran loop. Common ingredients:
//
//   - A long-distance recurrence (distance 6, beyond the 4-processor
//     window) keeps each loop out of reach of static parallelization —
//     the compiler sees a cross-segment flow dependence — while staying
//     conflict-free at run time, which is precisely the kind of loop
//     speculative execution profits from.
//   - The Figure 6/8/9 loops touch more locations per segment than the
//     128-entry speculative storage holds, so HOSE overflows and
//     serializes; under CASE only the speculative remainder is tracked.
//   - The Figure 7 loops fit in speculative storage; their CASE benefit
//     comes from the privatized workspace bypassing it (fewer entries,
//     cheaper commits), partially offset by the stack setup cost.
//
// The loops of Figure 8 are stand-ins (the paper's text does not name
// them); they carry plausible names from the same benchmarks.
func NamedLoops() []LoopSpec {
	return []LoopSpec{
		// ------- Figure 6: read-only category -------
		{Bench: "TOMCATV", Name: "MAIN_DO80", Fig: 6, Src: `
program tomcatv_main_do80
var x[34,34]
var y[34,34]
var rx[34,34]
var ry[34,34]
var rsum[40]
# Mesh relaxation sweep: per row j, heavy read-only access to the mesh
# coordinates x and y; residuals are written once per point; the row
# residual recurrence (distance 6) is the unanalyzable serial sink.
region main_do80 loop j = 1 to 24 {
  liveout rx, ry, rsum
  for i = 1 to 30 {
    rx[i,j] = x[i-1,j] + x[i+1,j] + x[i,j-1] + x[i,j+1] - 4 * x[i,j]
    ry[i,j] = y[i-1,j] + y[i+1,j] + y[i,j-1] + y[i,j+1] - 4 * y[i,j]
  }
  rsum[j+6] = rsum[j] + rx[1,j] + ry[1,j]
}
`},
		{Bench: "WAVE5", Name: "PARMVR_DO120", Fig: 6, Src: `
program wave5_parmvr_do120
var ex[128]
var ey[128]
var jx[1024]
var vx[1024]
var vy[1024]
var esum[24]
# Particle mover, blocked 48 particles per segment: gathers of the
# read-only field arrays through the particle cell index jx (a
# subscripted subscript), velocity updates, and a block-energy
# recurrence at distance 6.
region parmvr_do120 loop b = 0 to 15 {
  liveout vx, vy, esum
  for p = 0 to 47 {
    vx[b*48+p] = vx[b*48+p] + ex[jx[b*48+p]] + ex[jx[b*48+p+1]]
    vy[b*48+p] = vy[b*48+p] + ey[jx[b*48+p]] + ey[jx[b*48+p+1]]
  }
  esum[b+6] = esum[b] + vx[b*48]
}
`},
		{Bench: "WAVE5", Name: "PARMVR_DO140", Fig: 6, Src: `
program wave5_parmvr_do140
var ex[128]
var ey[128]
var bz[128]
var jx[1024]
var px[1024]
var py[1024]
var psum[24]
# Position update phase of the particle mover: even more field gathers
# per particle, same blocking and recurrence structure.
region parmvr_do140 loop b = 0 to 15 {
  liveout px, py, psum
  for p = 0 to 47 {
    px[b*48+p] = px[b*48+p] + ex[jx[b*48+p]] + bz[jx[b*48+p]] + ex[jx[b*48+p+1]]
    py[b*48+p] = py[b*48+p] + ey[jx[b*48+p]] + bz[jx[b*48+p]] + ey[jx[b*48+p+1]]
  }
  psum[b+6] = psum[b] + px[b*48]
}
`},
		// ------- Figure 7: private category -------
		{Bench: "TURB3D", Name: "DRCFT_DO2", Fig: 7, Src: `
program turb3d_drcft_do2
var u[40,24]
var w[40]
var uspec[30]
# Per-plane FFT-style transform: each plane is copied into the private
# work array w, transformed in place, and copied back. The spectral
# energy recurrence (distance 6) defeats static parallelization.
region drcft_do2 loop k = 0 to 23 {
  private w
  liveout u, uspec
  for i = 0 to 39 {
    w[i] = u[i,k]
  }
  for i = 0 to 19 {
    w[i] = w[i] + w[i+20]
    w[i+20] = w[i] - 2 * w[i+20]
  }
  for i = 0 to 39 {
    u[i,k] = w[i]
  }
  uspec[k+6] = uspec[k] + u[0,k]
}
`},
		{Bench: "APPLU", Name: "SETBV_DO2", Fig: 7, Src: `
program applu_setbv_do2
var ce[13]
var phi[40]
var u[5,42,24]
var unorm[30]
# Boundary-value setup: per column j, the boundary profile phi is a
# privatizable workspace recomputed from the read-only coefficient
# table ce; about half of the references go to the private array.
region setbv_do2 loop j = 0 to 23 {
  private phi
  liveout u, unorm
  for i = 0 to 39 {
    phi[i] = ce[0] + ce[1] * i + ce[2] * j
    phi[i] = phi[i] + ce[3] * phi[i]
  }
  for m = 0 to 4 {
    u[m,0,j] = phi[0] + ce[m]
    u[m,41,j] = phi[39] + ce[m+5]
  }
  unorm[j+6] = unorm[j] + u[0,0,j]
}
`},
		// ------- Figure 8: shared-dependent category -------
		{Bench: "SU2COR", Name: "LOOPS_DO400", Fig: 8, Src: `
program su2cor_loops_do400
var gauge[96]
var prop[64,24]
var prop2[64,24]
var corr[64,24]
var trace[30]
# Lattice propagator update: per site column k the propagator entries
# are first-written and then re-consumed in the same segment (covered
# reads) — the shared-dependent pattern; the plaquette trace recurrence
# keeps the loop speculative.
region loops_do400 loop k = 0 to 23 {
  liveout prop, prop2, corr, trace
  for i = 0 to 63 {
    prop[i,k] = gauge[i] + gauge[i+16] - gauge[i+32]
    prop2[i,k] = prop[i,k] * 2 + gauge[i+1]
    corr[i,k] = prop[i,k] + prop2[i,k]
  }
  trace[k+6] = trace[k] + corr[0,k]
}
`},
		{Bench: "HYDRO2D", Name: "FILTER_DO100", Fig: 8, Src: `
program hydro2d_filter_do100
var zz[80]
var fz[72,24]
var gz[72,24]
var hz[72,24]
var fsum[30]
# Filtering pass: smoothed fields are first-written per cell, then
# reused within the segment; the diagnostic recurrence serializes the
# analysis but not the runtime.
region filter_do100 loop k = 0 to 23 {
  liveout fz, gz, hz, fsum
  for i = 1 to 62 {
    fz[i,k] = zz[i-1] + 2 * zz[i] + zz[i+1]
    gz[i,k] = fz[i,k] - zz[i]
    hz[i,k] = fz[i,k] + gz[i,k]
  }
  fsum[k+6] = fsum[k] + hz[1,k]
}
`},
		{Bench: "APSI", Name: "DCDTZ_DO30", Fig: 8, Src: `
program apsi_dcdtz_do30
var dcdx[80]
var dkzh[80]
var help[72,24]
var helpa[72,24]
var topflx[30]
# Vertical diffusion step: per column k the working fields are
# first-written and immediately re-read; the top-flux recurrence keeps
# the loop out of reach of static parallelization.
region dcdtz_do30 loop k = 0 to 23 {
  liveout help, helpa, topflx
  for i = 1 to 62 {
    help[i,k] = dcdx[i] + dkzh[i]
    helpa[i,k] = help[i,k] * 2 - dkzh[i+1]
    help[i,k] = help[i,k] + helpa[i,k]
  }
  topflx[k+6] = topflx[k] + help[1,k]
}
`},
		// ------- Figure 9: fully-independent regions -------
		{Bench: "MGRID", Name: "RESID_DO600", Fig: 9, Src: `
program mgrid_resid_do600
var u[34,34]
var v[34,34]
var r[34,34]
# Residual stencil: plane sweeps are fully independent, but each
# segment touches far more locations than the speculative storage can
# hold, so HOSE serializes on overflow while CASE runs at full
# parallelism with nothing tracked at all.
region resid_do600 loop i2 = 1 to 30 {
  liveout r
  for i1 = 1 to 30 {
    r[i1,i2] = v[i1,i2] - 6 * u[i1,i2] + u[i1-1,i2] + u[i1+1,i2] + u[i1,i2-1] + u[i1,i2+1]
  }
}
`},
		{Bench: "MGRID", Name: "PSINV_DO600", Fig: 9, Src: `
program mgrid_psinv_do600
var r[44,34]
var u[44,34]
var c[4]
# Smoother: same fully-independent shape as the residual sweep, applied
# back to u (a read-modify-write, idempotent by Lemma 7).
region psinv_do600 loop i2 = 1 to 30 {
  liveout u
  for i1 = 1 to 40 {
    u[i1,i2] = u[i1,i2] + c[0] * r[i1,i2] + c[1] * (r[i1-1,i2] + r[i1+1,i2] + r[i1,i2-1] + r[i1,i2+1])
  }
}
`},
		{Bench: "MGRID", Name: "ZRAN3_DO400", Fig: 9, Src: `
program mgrid_zran3_do400
var z[160,34]
var best[34]
# Grid (re)initialization: almost every reference is a shared write,
# the "write shared" flavour of the fully-independent category.
region zran3_do400 loop i2 = 0 to 29 {
  liveout z, best
  for i1 = 0 to 159 {
    z[i1,i2] = i1 - i2
  }
  best[i2] = z[0,i2]
}
`},
	}
}

// FindLoop returns the named loop spec.
func FindLoop(bench, name string) (LoopSpec, bool) {
	for _, s := range NamedLoops() {
		if s.Bench == bench && s.Name == name {
			return s, true
		}
	}
	return LoopSpec{}, false
}
