package workloads

import (
	"fmt"

	"refidem/internal/ir"
)

// Mix sets how many units of each idempotency category a benchmark's
// non-parallelizable section executes per segment. Each unit expands to a
// fixed reference pattern whose labels are known (and verified by tests):
//
//	RO unit:   8 reads of read-only arrays + 1 first-write (9 refs)
//	Priv unit: a private-scalar chain (6 private refs)
//	SD unit:   1 read-only read + 2 first-writes + 2 covered reads (5 refs)
//	Spec unit: a serial accumulator read-modify-write (2 speculative refs)
//
// The actually reported fractions are measured by running the real
// analysis and simulator on the expanded program — the Mix only shapes the
// code, nothing is hard-coded.
type Mix struct {
	RO   int
	Priv int
	SD   int
	Spec int
}

// Benchmark is one entry of the paper's 13-program suite (Figure 5).
type Benchmark struct {
	Name string
	// FullyParallel marks programs whose every region the compiler
	// parallelizes (SWIM, TRFD, ARC2D): they have no non-parallelizable
	// sections, so the Figure 5 fraction is reported over an empty set.
	FullyParallel bool
	Mix           Mix
	Iters         int
}

// Suite returns the 13 benchmarks of Figure 5 with mixes following the
// paper's qualitative description (DESIGN.md §4).
func Suite() []Benchmark {
	return []Benchmark{
		{Name: "APPLU", Mix: Mix{RO: 4, Priv: 1, SD: 4, Spec: 14}, Iters: 16},
		{Name: "APSI", Mix: Mix{RO: 5, Priv: 1, SD: 1, Spec: 20}, Iters: 16},
		{Name: "ARC2D", FullyParallel: true},
		{Name: "BDNA", Mix: Mix{RO: 6, Priv: 3, SD: 1, Spec: 16}, Iters: 16},
		{Name: "FPPPP", Mix: Mix{RO: 0, Priv: 0, SD: 1, Spec: 14}, Iters: 16},
		{Name: "HYDRO2D", Mix: Mix{RO: 6, Priv: 0, SD: 2, Spec: 18}, Iters: 16},
		{Name: "MGRID", Mix: Mix{RO: 4, Priv: 0, SD: 9, Spec: 13}, Iters: 16},
		{Name: "SU2COR", Mix: Mix{RO: 3, Priv: 2, SD: 1, Spec: 22}, Iters: 16},
		{Name: "SWIM", FullyParallel: true},
		{Name: "TOMCATV", Mix: Mix{RO: 9, Priv: 1, SD: 0, Spec: 9}, Iters: 16},
		{Name: "TRFD", FullyParallel: true},
		{Name: "TURB3D", Mix: Mix{RO: 4, Priv: 5, SD: 0, Spec: 15}, Iters: 16},
		{Name: "WAVE5", Mix: Mix{RO: 8, Priv: 1, SD: 2, Spec: 15}, Iters: 16},
	}
}

// Program expands the benchmark's non-parallelizable section into an
// executable program. Fully parallel benchmarks return a small
// fully-independent region (which Lemma 7 makes entirely idempotent and
// which the Figure 5 metric excludes, because it is not a
// non-parallelizable section).
func (b Benchmark) Program() *ir.Program {
	if b.FullyParallel {
		return fullyParallelProgram(b.Name)
	}
	return MixProgram(b.Name, b.Iters, b.Mix)
}

// fullyParallelProgram is a trivially independent streaming loop.
func fullyParallelProgram(name string) *ir.Program {
	p := ir.NewProgram(name)
	src := p.AddVar("src", 64)
	dst := p.AddVar("dst", 64)
	r := &ir.Region{Name: "stream", Kind: ir.LoopRegion, Index: "k", From: 0, To: 31, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Name: "iter", Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(dst, ir.Idx("k")), RHS: ir.AddE(ir.Rd(src, ir.Idx("k")), ir.C(1))},
		}}}}
	r.Ann.LiveOut = map[string]bool{"dst": true}
	r.Finalize()
	p.AddRegion(r)
	return p
}

// MixProgram expands a Mix into one loop region of iters iterations.
func MixProgram(name string, iters int, m Mix) *ir.Program {
	p := ir.NewProgram(name)
	pad := m.RO + m.SD + 16
	ro1 := p.AddVar("ro1", iters+pad)
	ro2 := p.AddVar("ro2", iters+pad)
	var body []ir.Stmt
	k := ir.Idx("k")

	// RO units: wide read-only gathers into per-unit first-write rows.
	if m.RO > 0 {
		gout := p.AddVar("gout", m.RO, iters)
		for u := 0; u < m.RO; u++ {
			sum := ir.Rd(ro1, ir.AddE(k, ir.C(int64(u))))
			for j := 1; j < 8; j++ {
				src := ro1
				if j%2 == 1 {
					src = ro2
				}
				sum = ir.AddE(sum, ir.Rd(src, ir.AddE(k, ir.C(int64(u+j)))))
			}
			body = append(body, &ir.Assign{LHS: ir.Wr(gout, ir.C(int64(u)), k), RHS: sum})
		}
	}
	// Private units: write-first scalar chains, dead after the segment.
	if m.Priv > 0 {
		pw := p.AddVar("pw", m.Priv)
		for u := 0; u < m.Priv; u++ {
			uC := ir.C(int64(u))
			body = append(body,
				&ir.Assign{LHS: ir.Wr(pw, uC), RHS: ir.AddE(k, uC)},
				&ir.Assign{LHS: ir.Wr(pw, uC), RHS: ir.AddE(ir.Rd(pw, uC), ir.Rd(pw, uC))},
				&ir.Assign{LHS: ir.Wr(pw, uC), RHS: ir.AddE(ir.Rd(pw, uC), ir.C(1))},
			)
		}
	}
	// SD units: first-write then covered reads (the shared-dependent
	// category).
	if m.SD > 0 {
		sd1 := p.AddVar("sd1", m.SD, iters)
		sd2 := p.AddVar("sd2", m.SD, iters)
		for u := 0; u < m.SD; u++ {
			uC := ir.C(int64(u))
			body = append(body,
				&ir.Assign{LHS: ir.Wr(sd1, uC, k),
					RHS: ir.AddE(ir.Rd(ro1, ir.AddE(k, uC)), ir.C(1))},
				&ir.Assign{LHS: ir.Wr(sd2, uC, k),
					RHS: ir.AddE(ir.Rd(sd1, uC, k), ir.Rd(sd1, uC, k))},
			)
		}
	}
	// Speculative units: serial accumulators (cross-segment flow sinks).
	if m.Spec > 0 {
		acc := p.AddVar("acc", m.Spec)
		for u := 0; u < m.Spec; u++ {
			uC := ir.C(int64(u))
			body = append(body, &ir.Assign{
				LHS: ir.Wr(acc, uC),
				RHS: ir.AddE(ir.Rd(acc, uC), ir.AddE(k, uC)),
			})
		}
	}

	r := &ir.Region{Name: fmt.Sprintf("%s_nonpar", name), Kind: ir.LoopRegion,
		Index: "k", From: 0, To: iters - 1, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Name: "iter", Body: body}}}
	live := map[string]bool{}
	for _, v := range p.Vars {
		switch v.Name {
		case "ro1", "ro2", "pw":
		default:
			live[v.Name] = true
		}
	}
	if m.Priv > 0 {
		r.Ann.Private = map[string]bool{"pw": true}
	}
	r.Ann.LiveOut = live
	r.Finalize()
	p.AddRegion(r)
	return p
}
