package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	var n int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&n, 1) })
	if n != 100 {
		t.Errorf("ran %d, want 100", n)
	}
}

func TestForEachZero(t *testing.T) {
	ForEach(0, 4, func(i int) { t.Error("should not run") })
	ForEach(-3, 4, func(i int) { t.Error("should not run") })
}

func TestForEachDefaultWorkers(t *testing.T) {
	var n int64
	ForEach(10, 0, func(i int) { atomic.AddInt64(&n, 1) })
	if n != 10 {
		t.Errorf("ran %d", n)
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(50, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic should propagate")
		}
	}()
	ForEach(10, 4, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

func TestForEachCtxRunsAll(t *testing.T) {
	var n int64
	if err := ForEachCtx(context.Background(), 100, 4, func(i int) { atomic.AddInt64(&n, 1) }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("ran %d, want 100", n)
	}
}

func TestForEachCtxCancelStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int64
	// One worker, so indices run strictly one at a time: cancelling inside
	// the first call guarantees no later index starts.
	err := ForEachCtx(ctx, 1000, 1, func(i int) {
		atomic.AddInt64(&started, 1)
		cancel()
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if started != 1 {
		t.Errorf("started %d calls after cancel, want 1", started)
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachCtx(ctx, 10, 4, func(i int) { t.Error("should not run") })
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestForEachCtxPanicStopsAndPropagates(t *testing.T) {
	var ran int64
	defer func() {
		if recover() == nil {
			t.Error("panic should propagate")
		}
		// Single worker: the panic on index 0 must prevent every later index.
		if ran != 1 {
			t.Errorf("ran %d calls after panic, want 1", ran)
		}
	}()
	ForEachCtx(context.Background(), 100, 1, func(i int) {
		atomic.AddInt64(&ran, 1)
		panic("boom")
	})
}

func TestMapCtxOrder(t *testing.T) {
	out, err := MapCtx(context.Background(), 50, 8, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
