package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	var n int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&n, 1) })
	if n != 100 {
		t.Errorf("ran %d, want 100", n)
	}
}

func TestForEachZero(t *testing.T) {
	ForEach(0, 4, func(i int) { t.Error("should not run") })
	ForEach(-3, 4, func(i int) { t.Error("should not run") })
}

func TestForEachDefaultWorkers(t *testing.T) {
	var n int64
	ForEach(10, 0, func(i int) { atomic.AddInt64(&n, 1) })
	if n != 10 {
		t.Errorf("ran %d", n)
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(50, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic should propagate")
		}
	}()
	ForEach(10, 4, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}
