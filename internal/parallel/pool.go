// Package parallel provides the bounded worker pool the experiment
// harness uses to fan simulator runs out across host cores. Results are
// collected in submission order, so experiment output stays deterministic
// regardless of scheduling.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). It blocks until all calls complete.
// The first panic, if any, is re-raised on the caller's goroutine.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		next     int
		mu       sync.Mutex
		panicked any
		once     sync.Once
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							once.Do(func() { panicked = r })
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map applies fn to each index and returns the results in order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// ForEachCtx is ForEach with early cancellation: once ctx is done or any
// fn panics, no further indices are started (in-flight calls run to
// completion — fn cannot be preempted). It blocks until every started
// call returns, then re-raises the first panic if there was one, and
// otherwise returns ctx.Err() (nil when all n calls ran).
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		next     int
		stopped  bool
		panicked any
		once     sync.Once
	)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				mu.Lock()
				if stopped || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				func() {
					defer func() {
						if r := recover(); r != nil {
							once.Do(func() { panicked = r })
							mu.Lock()
							stopped = true
							mu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return ctx.Err()
}

// MapCtx applies fn to each index with ForEachCtx's cancellation
// semantics. On early cancel the returned slice still has length n; slots
// whose call never started (or was in flight when cancellation hit and
// completed anyway) hold whatever fn stored — callers should treat the
// whole slice as partial whenever the error is non-nil.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out, err
}
