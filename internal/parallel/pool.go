// Package parallel provides the bounded worker pool the experiment
// harness uses to fan simulator runs out across host cores. Results are
// collected in submission order, so experiment output stays deterministic
// regardless of scheduling.
package parallel

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). It blocks until all calls complete.
// The first panic, if any, is re-raised on the caller's goroutine.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		next     int
		mu       sync.Mutex
		panicked any
		once     sync.Once
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							once.Do(func() { panicked = r })
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map applies fn to each index and returns the results in order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}
