package obs

// The speculation timeline: a bounded event log the engine fills while it
// simulates (engine.Config.Timeline), exported as Chrome trace-event JSON
// so Perfetto and chrome://tracing can render the machine's speculation
// behaviour — which segments ran where, what got squashed and why, where
// the trace JIT entered and bailed. Timestamps are simulated cycles (the
// export declares one trace microsecond per cycle); nothing here reads a
// clock, so a timeline-carrying run is as deterministic as the engine.

import (
	"encoding/json"
	"io"
	"strconv"
)

// EventKind classifies one timeline event.
type EventKind uint8

const (
	// EvSpawn: a segment instance was dispatched to a processor.
	EvSpawn EventKind = iota
	// EvCommit: the oldest instance retired and committed its buffer.
	EvCommit
	// EvSquash: an instance's execution was thrown away (see Cause).
	EvSquash
	// EvStall: an instance parked on speculative-storage overflow.
	EvStall
	// EvTraceCompile: the trace JIT compiled a superblock.
	EvTraceCompile
	// EvTraceEnter: an instance entered a compiled superblock.
	EvTraceEnter
	// EvTraceBailout: a superblock exited back to the interpreter.
	EvTraceBailout
)

// String names the kind as rendered in the Chrome trace.
func (k EventKind) String() string {
	switch k {
	case EvSpawn:
		return "spawn"
	case EvCommit:
		return "commit"
	case EvSquash:
		return "squash"
	case EvStall:
		return "overflow-stall"
	case EvTraceCompile:
		return "trace-compile"
	case EvTraceEnter:
		return "trace-enter"
	case EvTraceBailout:
		return "trace-bailout"
	}
	return "unknown"
}

// Cause says why a squash (or stall) happened.
type Cause uint8

const (
	// CauseNone: the event carries no cause.
	CauseNone Cause = iota
	// CauseFlowViolation: a write found a premature read in a younger
	// segment (the squashed work read a stale value).
	CauseFlowViolation
	// CauseControlViolation: the speculatively spawned successor was not
	// the segment's actual successor.
	CauseControlViolation
	// CauseEarlyExitRevoke: a retired early-exit segment revoked the
	// younger speculation that outlived it.
	CauseEarlyExitRevoke
	// CauseOverflow: speculative storage ran out of entries.
	CauseOverflow
)

// String names the cause as rendered in traces and attribution tables.
func (c Cause) String() string {
	switch c {
	case CauseFlowViolation:
		return "flow-violation"
	case CauseControlViolation:
		return "control-violation"
	case CauseEarlyExitRevoke:
		return "early-exit-revoke"
	case CauseOverflow:
		return "overflow"
	}
	return "none"
}

// RefInfo describes one region reference for attribution: its rendered
// text and the idempotency labeling that routed it.
type RefInfo struct {
	Text     string
	Label    string
	Category string
}

// Event is one timeline entry. Times and durations are simulated cycles.
type Event struct {
	Kind EventKind
	// Time is when the event happened; for EvCommit and EvSquash it is
	// the end of the execution and Dur reaches back to its dispatch.
	Time int64
	Dur  int64
	Proc int32
	Age  int32
	Seg  int32
	// Ref is the dense region-local ID of the reference involved (the
	// violating writer for flow-violation squashes), -1 when no single
	// reference caused the event.
	Ref int32
	// Region indexes Timeline.Regions (stamped by Add).
	Region int32
	// Aux carries a per-kind extra: committed entries (EvCommit), buffer
	// occupancy (EvStall), elided ops (EvTraceCompile), bail PC
	// (EvTraceBailout).
	Aux   int64
	Cause Cause
}

// Region is one executed region's track in the timeline: its name, its
// cycle extent, and the reference table events attribute against.
type Region struct {
	Name  string
	Start int64
	End   int64
	Refs  []RefInfo
}

// Timeline accumulates one run's speculation events. It is not safe for
// concurrent use: attach one Timeline to one engine run at a time.
type Timeline struct {
	// MaxEvents bounds the event log (<= 0 selects 1<<18); events past
	// the bound are counted in Dropped instead of stored.
	MaxEvents int
	Events    []Event
	Regions   []Region
	Dropped   int64
	cur       int32
}

// BeginRegion opens a region track; subsequent events attribute against
// refs (indexed by dense region-local ref ID).
func (t *Timeline) BeginRegion(name string, start int64, refs []RefInfo) {
	t.Regions = append(t.Regions, Region{Name: name, Start: start, End: -1, Refs: refs})
	t.cur = int32(len(t.Regions) - 1)
}

// EndRegion closes the currently open region track.
func (t *Timeline) EndRegion(end int64) {
	if len(t.Regions) > 0 {
		t.Regions[t.cur].End = end
	}
}

// Add appends one event, stamping it with the open region. Full logs
// count drops instead of growing (the cap keeps a runaway simulation
// from holding the process's memory hostage).
func (t *Timeline) Add(e Event) {
	max := t.MaxEvents
	if max <= 0 {
		max = 1 << 18
	}
	if len(t.Events) >= max {
		t.Dropped++
		return
	}
	e.Region = t.cur
	t.Events = append(t.Events, e)
}

// RefInfo resolves an event's reference against its region table.
func (t *Timeline) RefInfo(e *Event) (RefInfo, bool) {
	if e.Ref < 0 || int(e.Region) >= len(t.Regions) {
		return RefInfo{}, false
	}
	refs := t.Regions[e.Region].Refs
	if int(e.Ref) >= len(refs) {
		return RefInfo{}, false
	}
	return refs[e.Ref], true
}

// NamedTimeline pairs a timeline with the process-track name it renders
// under in the Chrome trace (one per execution mode, typically).
type NamedTimeline struct {
	Name string
	T    *Timeline
}

// chromeEvent is one trace-event JSON object. Field order is fixed by
// the struct, so the export is byte-deterministic given the events.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   int64       `json:"ts"`
	Dur  int64       `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	S    string      `json:"s,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the per-event detail pane.
type chromeArgs struct {
	Name      string `json:"name,omitempty"`
	Region    string `json:"region,omitempty"`
	Age       int64  `json:"age,omitempty"`
	Cause     string `json:"cause,omitempty"`
	Ref       string `json:"ref,omitempty"`
	Label     string `json:"label,omitempty"`
	Category  string `json:"category,omitempty"`
	Entries   int64  `json:"entries,omitempty"`
	Occupancy int64  `json:"occupancy,omitempty"`
	Elided    int64  `json:"elided,omitempty"`
	BailPC    int64  `json:"bail_pc,omitempty"`
	Dropped   int64  `json:"dropped,omitempty"`
}

// chromeDoc is the JSON object format of the trace-event spec: Perfetto
// and chrome://tracing both load it directly.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// regionsTid is the synthetic thread each process uses for its region
// track, placed past any plausible processor index.
const regionsTid = 1 << 20

// WriteChromeTrace renders the timelines as one Chrome trace-event JSON
// document: each timeline becomes a process (pid 1..n) whose threads are
// the simulated processors, segment executions render as complete ("X")
// slices — committed under cat "retired", discarded under "squashed" —
// and stalls, violations and trace-JIT activity render as instants. One
// trace microsecond equals one simulated cycle.
func WriteChromeTrace(w io.Writer, timelines []NamedTimeline) error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for i, nt := range timelines {
		pid := i + 1
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: &chromeArgs{Name: nt.Name},
		}, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: regionsTid,
			Args: &chromeArgs{Name: "regions"},
		})
		tl := nt.T
		if tl == nil {
			continue
		}
		for ri := range tl.Regions {
			r := &tl.Regions[ri]
			end := r.End
			if end < r.Start {
				end = r.Start
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: r.Name, Cat: "region", Ph: "X",
				Ts: r.Start, Dur: end - r.Start, Pid: pid, Tid: regionsTid,
			})
		}
		for ei := range tl.Events {
			e := &tl.Events[ei]
			ce := chromeEvent{Pid: pid, Tid: int(e.Proc)}
			args := &chromeArgs{Age: int64(e.Age)}
			if int(e.Region) < len(tl.Regions) {
				args.Region = tl.Regions[e.Region].Name
			}
			if info, ok := tl.RefInfo(e); ok {
				args.Ref = info.Text
				args.Label = info.Label
				args.Category = info.Category
			}
			switch e.Kind {
			case EvCommit, EvSquash:
				ce.Ph = "X"
				ce.Ts = e.Time - e.Dur
				ce.Dur = e.Dur
				ce.Name = "seg " + strconv.Itoa(int(e.Seg)) + " age " + strconv.Itoa(int(e.Age))
				if e.Kind == EvCommit {
					ce.Cat = "retired"
					args.Entries = e.Aux
				} else {
					ce.Cat = "squashed"
					args.Cause = e.Cause.String()
				}
			case EvStall:
				ce.Ph, ce.S = "i", "t"
				ce.Ts = e.Time
				ce.Name = e.Kind.String()
				ce.Cat = "stall"
				args.Cause = e.Cause.String()
				args.Occupancy = e.Aux
			case EvTraceCompile, EvTraceEnter, EvTraceBailout:
				ce.Ph, ce.S = "i", "t"
				ce.Ts = e.Time
				ce.Name = e.Kind.String()
				ce.Cat = "trace-jit"
				if e.Kind == EvTraceCompile {
					args.Elided = e.Aux
				}
				if e.Kind == EvTraceBailout {
					args.BailPC = e.Aux
				}
			default: // EvSpawn
				ce.Ph, ce.S = "i", "t"
				ce.Ts = e.Time
				ce.Name = e.Kind.String()
				ce.Cat = "dispatch"
			}
			ce.Args = args
			doc.TraceEvents = append(doc.TraceEvents, ce)
		}
		if tl.Dropped > 0 {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "events-dropped", Ph: "i", S: "p", Pid: pid, Tid: regionsTid,
				Args: &chromeArgs{Dropped: tl.Dropped},
			})
		}
	}
	enc, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(enc, '\n'))
	return err
}
