// Package obs is the observability layer shared by the serving and
// engine tiers: a fixed-size, lock-light flight recorder of per-request
// spans (served on /debug/tracez) and a speculation timeline capturing
// segment spawn/commit/squash events from the engine (exported as Chrome
// trace-event JSON for Perfetto).
//
// Both recorders are strictly observational. Span timestamps are
// wall-clock reads that never reach a response document (the detlint
// time-now annotations below mark every site), and timeline events are
// stamped with simulated cycles, so attaching either changes no output
// byte anywhere else. Both are designed to be disabled by a nil pointer:
// the hot paths they instrument carry a single nil check and nothing
// else when observability is off.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes one phase of a request's life inside the serving layer.
// The stages mirror the request walkthrough in docs/ARCHITECTURE.md:
// admission control, the response byte cache probe, the
// program-cache/singleflight trip (parse plus the wait for the shared
// computation), and the worker-side store read, compute and write-behind
// phases.
type Stage uint8

const (
	// StageAdmission is request validation plus admission-queue entry.
	StageAdmission Stage = iota
	// StageRespCache is the response byte cache probe.
	StageRespCache
	// StageSingleflight is program resolution (parse or example lookup)
	// plus the wait on the possibly-coalesced computation.
	StageSingleflight
	// StageStoreRead is the worker's persistent-tier lookup (warm index
	// and backend read). Worker stages are shared: coalesced waiters
	// report the one computation they all waited on.
	StageStoreRead
	// StageCompute is labeling, simulation and response rendering.
	StageCompute
	// StageStoreWrite is the write-behind persistence enqueue.
	StageStoreWrite
	// NumStages sizes per-span stage arrays.
	NumStages
)

// String names the stage as rendered on /debug/tracez.
func (st Stage) String() string {
	switch st {
	case StageAdmission:
		return "admission"
	case StageRespCache:
		return "resp_cache"
	case StageSingleflight:
		return "singleflight"
	case StageStoreRead:
		return "store_read"
	case StageCompute:
		return "compute"
	case StageStoreWrite:
		return "store_write"
	}
	return "unknown"
}

// Span is one request's flight record: identity, outcome and monotonic
// per-stage durations. Spans are plain values — Begin returns one on the
// caller's stack, the caller laps stages into it, and Record copies it
// into the ring — so recording a request allocates nothing.
type Span struct {
	// TraceID is the recorder-assigned request ID (1-based, monotonic;
	// echoed to HTTP clients as X-Refidem-Trace-Id).
	TraceID uint64
	// Op is the request operation ("label", "simulate").
	Op string
	// Outcome classifies how the request ended: "ok", "bad_request",
	// "overloaded", "timeout", "closed", "canceled" or "error".
	Outcome string
	// Source says what answered an ok request: "resp_cache", "store" or
	// "compute" (coalesced waiters inherit the leader's source).
	Source string
	// Coalesced marks a request that joined an identical in-flight
	// computation instead of enqueueing its own.
	Coalesced bool
	// Fingerprint is the program content fingerprint, valid when
	// HasFingerprint is set (requests failing before admission never
	// learn it).
	Fingerprint [32]byte
	// HasFingerprint reports whether Fingerprint is meaningful.
	HasFingerprint bool
	// Start is the request arrival wall clock (Unix nanoseconds), for
	// display only; durations below come from the monotonic clock.
	Start int64
	// Stages holds nanoseconds spent per Stage. Stages not visited stay
	// zero; revisited stages accumulate.
	Stages [NumStages]int64
	// Total is the request's end-to-end monotonic duration in
	// nanoseconds.
	Total int64

	began time.Time
	lap   time.Time
}

// Begin opens a span for one request. The caller assigns TraceID (see
// FlightRecorder.NextID), laps stages as they complete, and commits the
// span with End plus FlightRecorder.Record.
func Begin(op string) Span {
	now := time.Now() //detlint:allow time-now (span timing never reaches response bytes)
	return Span{Op: op, Start: now.UnixNano(), began: now, lap: now}
}

// Lap charges the time since the previous lap (or Begin) to one stage.
func (s *Span) Lap(st Stage) {
	now := time.Now() //detlint:allow time-now (span timing never reaches response bytes)
	s.Stages[st] += now.Sub(s.lap).Nanoseconds()
	s.lap = now
}

// End stamps the outcome and the total duration.
func (s *Span) End(outcome string) {
	s.Outcome = outcome
	s.Total = time.Since(s.began).Nanoseconds() //detlint:allow time-now (span timing never reaches response bytes)
}

// slot is one ring entry. Each slot has its own mutex so concurrent
// writers contend only when their trace IDs collide on a slot (ring
// capacity apart), and a tracez snapshot never blocks the whole ring.
type slot struct {
	mu   sync.Mutex
	span Span
}

// FlightRecorder is the fixed-size request span ring. Writers claim a
// trace ID from one atomic counter; the ID modulo the capacity is the
// span's slot, so the ring always holds the most recent spans and
// recording is wait-free apart from the slot mutex.
type FlightRecorder struct {
	seq   atomic.Uint64
	slots []slot
}

// NewFlightRecorder builds a recorder holding the last n spans
// (n <= 0 selects 256).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 256
	}
	return &FlightRecorder{slots: make([]slot, n)}
}

// Cap reports the ring capacity in spans.
func (r *FlightRecorder) Cap() int { return len(r.slots) }

// NextID claims the next trace ID (1-based, monotonic).
func (r *FlightRecorder) NextID() uint64 { return r.seq.Add(1) }

// Record commits a finished span into the ring slot owned by its trace
// ID. The span is copied by value; Record never allocates.
func (r *FlightRecorder) Record(sp Span) {
	if sp.TraceID == 0 {
		return
	}
	sl := &r.slots[(sp.TraceID-1)%uint64(len(r.slots))]
	sl.mu.Lock()
	sl.span = sp
	sl.mu.Unlock()
}

// Snapshot copies the recorded spans out of the ring, newest trace ID
// first. Slots claimed by still-in-flight requests report the span they
// last held (or nothing when never written).
func (r *FlightRecorder) Snapshot() []Span {
	seq := r.seq.Load()
	n := uint64(len(r.slots))
	if seq < n {
		n = seq
	}
	out := make([]Span, 0, n)
	for id := seq; id > seq-n; id-- {
		sl := &r.slots[(id-1)%uint64(len(r.slots))]
		sl.mu.Lock()
		sp := sl.span
		sl.mu.Unlock()
		if sp.TraceID != 0 {
			out = append(out, sp)
		}
	}
	return out
}
