package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	r := NewFlightRecorder(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", r.Cap())
	}
	for i := 1; i <= 6; i++ {
		sp := Begin("label")
		sp.TraceID = r.NextID()
		if sp.TraceID != uint64(i) {
			t.Fatalf("NextID = %d, want %d", sp.TraceID, i)
		}
		sp.Lap(StageAdmission)
		sp.End("ok")
		r.Record(sp)
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("Snapshot holds %d spans, want 4 (ring capacity)", len(got))
	}
	// Newest trace ID first; the two oldest spans were overwritten.
	want := []uint64{6, 5, 4, 3}
	for i, sp := range got {
		if sp.TraceID != want[i] {
			t.Errorf("Snapshot[%d].TraceID = %d, want %d", i, sp.TraceID, want[i])
		}
		if sp.Op != "label" || sp.Outcome != "ok" {
			t.Errorf("Snapshot[%d] = op %q outcome %q, want label/ok", i, sp.Op, sp.Outcome)
		}
		if sp.Total < 0 || sp.Stages[StageAdmission] < 0 {
			t.Errorf("Snapshot[%d] has negative durations: %+v", i, sp)
		}
	}
}

func TestFlightRecorderSkipsUnwritten(t *testing.T) {
	r := NewFlightRecorder(8)
	// Claim IDs 1..3 but only record 2: in-flight requests must not
	// surface as ghost spans.
	r.NextID()
	id2 := r.NextID()
	r.NextID()
	sp := Begin("simulate")
	sp.TraceID = id2
	sp.End("ok")
	r.Record(sp)
	got := r.Snapshot()
	if len(got) != 1 || got[0].TraceID != 2 {
		t.Fatalf("Snapshot = %+v, want exactly the one recorded span (id 2)", got)
	}
}

func TestFlightRecorderEmpty(t *testing.T) {
	r := NewFlightRecorder(0)
	if r.Cap() != 256 {
		t.Fatalf("Cap() = %d, want default 256", r.Cap())
	}
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty recorder Snapshot = %v, want none", got)
	}
	r.Record(Span{}) // TraceID 0 must be a no-op, not a slot write
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("zero-ID Record leaked a span: %v", got)
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	r := NewFlightRecorder(16)
	sp := Begin("label")
	sp.Lap(StageCompute)
	sp.End("ok")
	allocs := testing.AllocsPerRun(100, func() {
		sp.TraceID = r.NextID()
		r.Record(sp)
	})
	if allocs != 0 {
		t.Fatalf("NextID+Record allocated %.1f times per op, want 0", allocs)
	}
}

func TestSpanLapAccumulates(t *testing.T) {
	sp := Begin("label")
	sp.Lap(StageAdmission)
	sp.Lap(StageAdmission)
	sp.Lap(StageRespCache)
	sp.End("ok")
	var sum int64
	for _, d := range sp.Stages {
		if d < 0 {
			t.Fatalf("negative stage duration in %+v", sp.Stages)
		}
		sum += d
	}
	if sp.Total < sum {
		// End is stamped after the last lap, so total covers the laps.
		t.Fatalf("Total %d ns < sum of stages %d ns", sp.Total, sum)
	}
	if sp.Stages[StageStoreRead] != 0 {
		t.Fatalf("unvisited stage nonzero: %+v", sp.Stages)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageAdmission:    "admission",
		StageRespCache:    "resp_cache",
		StageSingleflight: "singleflight",
		StageStoreRead:    "store_read",
		StageCompute:      "compute",
		StageStoreWrite:   "store_write",
		NumStages:         "unknown",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("Stage(%d).String() = %q, want %q", st, st.String(), s)
		}
	}
}

func TestTimelineCapAndDrops(t *testing.T) {
	tl := &Timeline{MaxEvents: 3}
	tl.BeginRegion("r", 0, nil)
	for i := 0; i < 5; i++ {
		tl.Add(Event{Kind: EvSpawn, Time: int64(i), Ref: -1})
	}
	tl.EndRegion(10)
	if len(tl.Events) != 3 {
		t.Fatalf("stored %d events, want 3 (MaxEvents)", len(tl.Events))
	}
	if tl.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", tl.Dropped)
	}
	if tl.Regions[0].End != 10 {
		t.Fatalf("region end = %d, want 10", tl.Regions[0].End)
	}
}

func TestTimelineRefAttribution(t *testing.T) {
	tl := &Timeline{}
	refs := []RefInfo{
		{Text: "read a[i]", Label: "idempotent", Category: "read-only"},
		{Text: "write b[i]", Label: "speculative", Category: "other"},
	}
	tl.BeginRegion("loop", 0, refs)
	tl.Add(Event{Kind: EvSquash, Time: 40, Dur: 30, Ref: 1, Cause: CauseFlowViolation})
	tl.Add(Event{Kind: EvCommit, Time: 50, Dur: 20, Ref: -1})
	tl.EndRegion(60)

	if info, ok := tl.RefInfo(&tl.Events[0]); !ok || info.Text != "write b[i]" {
		t.Fatalf("refInfo(squash) = %+v, %v; want write b[i]", info, ok)
	}
	if _, ok := tl.RefInfo(&tl.Events[1]); ok {
		t.Fatalf("refInfo resolved a Ref=-1 event")
	}
}

// buildTestTimeline exercises every event kind once.
func buildTestTimeline() *Timeline {
	tl := &Timeline{}
	tl.BeginRegion("MAIN_DO80", 0, []RefInfo{
		{Text: "write x[i]", Label: "speculative", Category: "other"},
	})
	tl.Add(Event{Kind: EvSpawn, Time: 4, Proc: 1, Age: 1, Seg: 0, Ref: -1})
	tl.Add(Event{Kind: EvStall, Time: 9, Proc: 2, Age: 2, Seg: 0, Ref: -1, Aux: 3, Cause: CauseOverflow})
	tl.Add(Event{Kind: EvSquash, Time: 20, Dur: 16, Proc: 1, Age: 1, Seg: 0, Ref: 0, Cause: CauseFlowViolation})
	tl.Add(Event{Kind: EvTraceCompile, Time: 25, Proc: 0, Age: 0, Seg: 0, Ref: -1, Aux: 2})
	tl.Add(Event{Kind: EvTraceEnter, Time: 26, Proc: 0, Age: 0, Seg: 0, Ref: -1})
	tl.Add(Event{Kind: EvTraceBailout, Time: 30, Proc: 0, Age: 0, Seg: 0, Ref: -1, Aux: 7})
	tl.Add(Event{Kind: EvCommit, Time: 40, Dur: 36, Proc: 0, Age: 0, Seg: 0, Ref: -1, Aux: 5})
	tl.EndRegion(40)
	return tl
}

func TestWriteChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, []NamedTimeline{{Name: "CASE", T: buildTestTimeline()}})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Cat  string          `json:"cat"`
			Ph   string          `json:"ph"`
			Ts   int64           `json:"ts"`
			Dur  int64           `json:"dur"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit == "" {
		t.Fatal("missing displayTimeUnit")
	}
	byPh := map[string]int{}
	cats := map[string]int{}
	for _, e := range doc.TraceEvents {
		byPh[e.Ph]++
		cats[e.Cat]++
		if e.Pid != 1 {
			t.Fatalf("event %q has pid %d, want 1", e.Name, e.Pid)
		}
	}
	if byPh["M"] != 2 {
		t.Fatalf("want 2 metadata events (process_name, thread_name), got %d", byPh["M"])
	}
	// region + squash + commit render as complete slices.
	if byPh["X"] != 3 {
		t.Fatalf("want 3 complete slices, got %d: %v", byPh["X"], byPh)
	}
	for _, cat := range []string{"region", "retired", "squashed", "stall", "trace-jit", "dispatch"} {
		if cats[cat] == 0 {
			t.Errorf("no event with cat %q: %v", cat, cats)
		}
	}
	// The squash slice must start at Time-Dur.
	for _, e := range doc.TraceEvents {
		if e.Cat == "squashed" {
			if e.Ts != 4 || e.Dur != 16 {
				t.Fatalf("squash slice ts=%d dur=%d, want ts=4 dur=16", e.Ts, e.Dur)
			}
			var args struct {
				Cause string `json:"cause"`
				Ref   string `json:"ref"`
				Label string `json:"label"`
			}
			if err := json.Unmarshal(e.Args, &args); err != nil {
				t.Fatal(err)
			}
			if args.Cause != "flow-violation" || args.Ref != "write x[i]" || args.Label != "speculative" {
				t.Fatalf("squash args = %+v, want flow-violation on write x[i] (speculative)", args)
			}
		}
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	tls := []NamedTimeline{
		{Name: "HOSE", T: buildTestTimeline()},
		{Name: "CASE", T: buildTestTimeline()},
	}
	if err := WriteChromeTrace(&a, tls); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, tls); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same timelines differ byte-wise")
	}
}

func TestWriteChromeTraceDropMarker(t *testing.T) {
	tl := &Timeline{MaxEvents: 1}
	tl.BeginRegion("r", 0, nil)
	tl.Add(Event{Kind: EvSpawn, Ref: -1})
	tl.Add(Event{Kind: EvSpawn, Ref: -1})
	tl.EndRegion(1)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []NamedTimeline{{Name: "x", T: tl}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("events-dropped")) {
		t.Fatalf("export of a saturated timeline lacks the events-dropped marker:\n%s", buf.String())
	}
}
