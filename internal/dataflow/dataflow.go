// Package dataflow implements the prerequisite compiler analyses the paper
// assumes from a state-of-the-art parallelizing compiler (§4.2.1): per-
// segment variable summaries (the Write/Read/Null node attributes consumed
// by Algorithm 1), region live-out analysis, read-only variable detection,
// and private (privatizable) variable detection in the style of Tu and
// Padua's array/scalar privatization.
//
// The region analyses run on the dense region index (ir.RegionIndex):
// per-variable state lives in flat slices indexed by region-local variable
// number and results are word-packed bitsets, with all intermediate
// buffers pooled, so AnalyzeRegion allocates only the returned RegionInfo.
package dataflow

import (
	"sync"

	"refidem/internal/ir"
)

// Attr is the per-(segment, variable) attribute of Algorithm 1.
type Attr uint8

const (
	// NullAttr: the segment has no reference to the variable (or only
	// references that neither must-define it nor expose a read; see
	// SegAttrs).
	NullAttr Attr = iota
	// ReadAttr: some path through the segment reads the variable before
	// any write to it (an exposed read).
	ReadAttr
	// WriteAttr: the variable is defined on all paths through the segment
	// without an exposed read (a must-definition covering every read).
	WriteAttr
)

func (a Attr) String() string {
	switch a {
	case ReadAttr:
		return "Read"
	case WriteAttr:
		return "Write"
	default:
		return "Null"
	}
}

// state tracks, during the structured walk of a segment body, what has
// happened to one variable so far along all paths.
type state struct {
	// mustDef: the variable is written on every path up to this point.
	mustDef bool
	// exposed: some path up to this point reads the variable before any
	// write to it on that path.
	exposed bool
	// referenced: any reference at all was seen.
	referenced bool
}

// merge combines the states of two alternative branches.
func merge(a, b state) state {
	return state{
		mustDef:    a.mustDef && b.mustDef,
		exposed:    a.exposed || b.exposed,
		referenced: a.referenced || b.referenced,
	}
}

// attrOf folds a final walk state into the Algorithm 1 attribute.
func attrOf(st state) Attr {
	switch {
	case !st.referenced:
		return NullAttr
	case st.mustDef && !st.exposed:
		return WriteAttr
	case st.exposed:
		return ReadAttr
	default:
		// Referenced, but neither must-defined nor exposed-read:
		// e.g. a conditional write, or an array with only element
		// writes. Null per Algorithm 1's attribute rules.
		return NullAttr
	}
}

// SegAttrs computes the Algorithm 1 attribute of every variable referenced
// in the segment, at whole-variable granularity. Array element writes never
// must-define the whole array (the write covers one cell), so arrays with
// any read get ReadAttr and arrays with only writes get NullAttr; the
// loop-region RFW analysis refines arrays location-wise using dependence
// tests instead. Scalars are tracked precisely through the structured
// control flow of the segment body.
//
// SegAttrs is the standalone, map-returning form used by tools and tests;
// AnalyzeRegion runs the same walker over the dense region index
// (TestSegAttrsMatchesDenseWalk keeps the two in lockstep).
func SegAttrs(seg *ir.Segment) map[*ir.Var]Attr {
	// Number the segment's variables locally, then run the dense walker.
	// Reference IDs may be unassigned here (stand-alone segments), so the
	// walker resolves variables through the per-ref map instead of the
	// region index.
	local := make(map[*ir.Var]int32)
	var vars []*ir.Var
	byRef := make(map[*ir.Ref]int32)
	walkSegRefs(seg, func(ref *ir.Ref) {
		l, ok := local[ref.Var]
		if !ok {
			l = int32(len(vars))
			local[ref.Var] = l
			vars = append(vars, ref.Var)
		}
		byRef[ref] = l
	})

	w := walker{byRef: byRef, nv: len(vars)}
	states := w.row()
	w.walk(seg.Body, states)
	if seg.Branch != nil {
		w.exprReads(seg.Branch, states)
	}
	out := make(map[*ir.Var]Attr, len(vars))
	for i, v := range vars {
		if a := attrOf(states[i]); states[i].referenced {
			out[v] = a
		}
	}
	return out
}

// walkSegRefs visits every reference of the segment in evaluation order
// without allocating.
func walkSegRefs(seg *ir.Segment, f func(*ir.Ref)) {
	var stmts func([]ir.Stmt)
	var expr func(ir.Expr)
	expr = func(e ir.Expr) {
		switch x := e.(type) {
		case *ir.Load:
			for _, sub := range x.Ref.Subs {
				expr(sub)
			}
			f(x.Ref)
		case *ir.Bin:
			expr(x.L)
			expr(x.R)
		}
	}
	stmts = func(list []ir.Stmt) {
		for _, st := range list {
			switch s := st.(type) {
			case *ir.Assign:
				expr(s.RHS)
				for _, sub := range s.LHS.Subs {
					expr(sub)
				}
				f(s.LHS)
			case *ir.If:
				expr(s.Cond)
				stmts(s.Then)
				stmts(s.Else)
			case *ir.For:
				stmts(s.Body)
			case *ir.ExitRegion:
				expr(s.Cond)
			case *ir.Call:
				// Arguments are load-free; the references live in the
				// per-callsite expansion.
				stmts(s.Inlined)
			}
		}
	}
	stmts(seg.Body)
	if seg.Branch != nil {
		expr(seg.Branch)
	}
}

// walker runs the structured per-segment walk over dense state rows.
// Variables resolve through varOf (indexed by ref ID, the region-indexed
// fast path) or byRef (stand-alone segments without assigned IDs).
type walker struct {
	varOf []int32
	byRef map[*ir.Ref]int32
	nv    int
	free  [][]state
}

func (w *walker) local(ref *ir.Ref) int32 {
	if w.varOf != nil {
		return w.varOf[ref.ID]
	}
	return w.byRef[ref]
}

func (w *walker) row() []state {
	if n := len(w.free); n > 0 {
		r := w.free[n-1]
		w.free = w.free[:n-1]
		for i := range r {
			r[i] = state{}
		}
		return r
	}
	return make([]state, w.nv)
}

func (w *walker) release(r []state) { w.free = append(w.free, r) }

func (w *walker) read(ref *ir.Ref, states []state) {
	st := &states[w.local(ref)]
	st.referenced = true
	if !st.mustDef {
		st.exposed = true
	}
}

func (w *walker) write(ref *ir.Ref, states []state) {
	st := &states[w.local(ref)]
	st.referenced = true
	// An element write to an array does not must-define the aggregate.
	if ref.Var.IsScalar() {
		st.mustDef = true
	}
}

// exprReads applies read effects of every load in evaluation order.
func (w *walker) exprReads(e ir.Expr, states []state) {
	switch x := e.(type) {
	case *ir.Load:
		for _, sub := range x.Ref.Subs {
			w.exprReads(sub, states)
		}
		w.read(x.Ref, states)
	case *ir.Bin:
		w.exprReads(x.L, states)
		w.exprReads(x.R, states)
	}
}

func (w *walker) walk(stmts []ir.Stmt, states []state) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ir.Assign:
			w.exprReads(s.RHS, states)
			for _, sub := range s.LHS.Subs {
				w.exprReads(sub, states)
			}
			w.write(s.LHS, states)
		case *ir.If:
			w.exprReads(s.Cond, states)
			// Analyze both arms from the current state and merge.
			thenSt := w.row()
			elseSt := w.row()
			copy(thenSt, states)
			copy(elseSt, states)
			w.walk(s.Then, thenSt)
			w.walk(s.Else, elseSt)
			for i := range states {
				states[i] = merge(thenSt[i], elseSt[i])
			}
			w.release(thenSt)
			w.release(elseSt)
		case *ir.For:
			trips := ir.LoopInfo{From: s.From, To: s.To, Step: s.Step}.Trips()
			if trips == 0 {
				continue
			}
			// The loop executes at least once (static bounds), so its
			// body's first iteration effects apply unconditionally.
			w.walk(s.Body, states)
		case *ir.ExitRegion:
			w.exprReads(s.Cond, states)
		case *ir.Call:
			// A call executes its expansion unconditionally at the call
			// site; arguments carry no loads, so only the expansion
			// contributes read/write effects.
			w.walk(s.Inlined, states)
		}
	}
}

// RegionInfo aggregates the prerequisite analysis results for one region.
// Per-variable facts are stored densely over the region-local variable
// numbering (plus small spill maps for variables the region never
// references but that annotations or inter-region liveness name); the
// exported methods take *ir.Var for compatibility with external callers.
type RegionInfo struct {
	idx   *ir.RegionIndex
	attrs []Attr  // segPos*numVars + local
	refd  []bool  // segPos*numVars + local: any reference in the segment
	live  ir.Bits // region-local live-out
	ro    ir.Bits // region-local read-only
	priv  ir.Bits // region-local private

	// extraLive/extraPriv hold live-out and private variables with no
	// reference in the region (possible through annotations and the
	// inter-region liveness pass). Usually nil.
	extraLive map[*ir.Var]bool
	extraPriv map[*ir.Var]bool
}

// Index returns the dense region index the info was computed on.
func (info *RegionInfo) Index() *ir.RegionIndex { return info.idx }

// Attrs returns the Algorithm 1 attribute of v in the given segment
// (NullAttr when the segment never references v).
func (info *RegionInfo) Attrs(segID int, v *ir.Var) Attr {
	seg := info.idx.SegPos(segID)
	local := info.idx.LocalOf(v)
	if seg < 0 || local < 0 {
		return NullAttr
	}
	return info.AttrAt(seg, local)
}

// AttrAt is the dense form of Attrs over (segment age position, region-
// local variable index).
func (info *RegionInfo) AttrAt(segPos, local int32) Attr {
	return info.attrs[int(segPos)*len(info.idx.Vars)+int(local)]
}

// RefdAt reports whether the segment at the given age position references
// the region-local variable at all.
func (info *RegionInfo) RefdAt(segPos, local int32) bool {
	return info.refd[int(segPos)*len(info.idx.Vars)+int(local)]
}

// LiveOut reports whether v is live after the region exit.
func (info *RegionInfo) LiveOut(v *ir.Var) bool {
	if local := info.idx.LocalOf(v); local >= 0 {
		return info.live.Get(local)
	}
	return info.extraLive[v]
}

// ReadOnly reports whether v has no write reference in the region.
func (info *RegionInfo) ReadOnly(v *ir.Var) bool {
	return info.ro.Get(info.idx.LocalOf(v))
}

// Private reports whether v is segment-private (declared or inferred).
func (info *RegionInfo) Private(v *ir.Var) bool {
	if local := info.idx.LocalOf(v); local >= 0 {
		return info.priv.Get(local)
	}
	return info.extraPriv[v]
}

// Dense bit accessors over region-local variable indices, used by the
// downstream analyses.

// LiveOutAt reports live-out for a region-local variable index.
func (info *RegionInfo) LiveOutAt(local int32) bool { return info.live.Get(local) }

// ReadOnlyAt reports read-only for a region-local variable index.
func (info *RegionInfo) ReadOnlyAt(local int32) bool { return info.ro.Get(local) }

// PrivateAt reports privacy for a region-local variable index.
func (info *RegionInfo) PrivateAt(local int32) bool { return info.priv.Get(local) }

// scratch pools the walker state reused across AnalyzeRegion calls.
var scratchPool = sync.Pool{New: func() any { return &regionScratch{} }}

type regionScratch struct {
	w       walker
	states  []state
	written ir.Bits
}

// AnalyzeRegion computes the RegionInfo of r. liveOut gives the variables
// live after the region; if nil, the region's LiveOut annotation is used,
// and if that is also absent every referenced non-private variable is
// conservatively considered live.
func AnalyzeRegion(p *ir.Program, r *ir.Region, liveOut map[*ir.Var]bool) *RegionInfo {
	info := analyzeRegionAttrs(r)
	resolveLiveOut(info, p, r, liveOut, nil, nil)
	inferPrivate(info, p, r)
	return info
}

// analyzeRegionAttrs runs the per-segment walks and the read-only scan.
func analyzeRegionAttrs(r *ir.Region) *RegionInfo {
	idx := r.DenseIndex()
	nv := len(idx.Vars)
	info := &RegionInfo{
		idx:   idx,
		attrs: make([]Attr, idx.NumSegs*nv),
		refd:  make([]bool, idx.NumSegs*nv),
		live:  ir.MakeBits(nv),
		ro:    ir.MakeBits(nv),
		priv:  ir.MakeBits(nv),
	}
	sc := scratchPool.Get().(*regionScratch)
	sc.w.varOf = idx.VarOf
	if sc.w.nv < nv {
		sc.w.nv = nv
		sc.w.free = sc.w.free[:0]
	}
	if cap(sc.states) < nv {
		sc.states = make([]state, nv)
	}
	states := sc.states[:nv]

	for segPos, seg := range r.Segments {
		for i := range states {
			states[i] = state{}
		}
		sc.w.walk(seg.Body, states)
		if seg.Branch != nil {
			sc.w.exprReads(seg.Branch, states)
		}
		row := segPos * nv
		for i := range states {
			if states[i].referenced {
				info.refd[row+i] = true
				info.attrs[row+i] = attrOf(states[i])
			}
		}
	}

	// Read-only: no write reference anywhere in the region.
	written := ir.GrowBits(sc.written, nv)
	sc.written = written
	for _, ref := range r.Refs {
		if ref.Access == ir.Write {
			written.Set(idx.VarOf[ref.ID])
		}
	}
	for local := range idx.Vars {
		if !written.Get(int32(local)) {
			info.ro.Set(int32(local))
		}
	}
	scratchPool.Put(sc)
	return info
}

// resolveLiveOut fills the live-out set from, in priority order: the
// caller-provided map, the dense program-liveness bitset (progLive over
// progOf numbering), the region annotation, or the conservative
// everything-referenced default.
func resolveLiveOut(info *RegionInfo, p *ir.Program, r *ir.Region, liveOut map[*ir.Var]bool, progLive ir.Bits, progVars []*ir.Var) {
	idx := info.idx
	switch {
	case liveOut != nil:
		for v, ok := range liveOut {
			if ok {
				info.setLive(v)
			}
		}
	case progLive != nil:
		for i, v := range progVars {
			if progLive.Get(int32(i)) {
				info.setLive(v)
			}
		}
		// The region's own annotation can only add liveness.
		for name, ok := range r.Ann.LiveOut {
			if ok {
				if v := p.Var(name); v != nil {
					info.setLive(v)
				}
			}
		}
	case r.Ann.LiveOut != nil:
		for name, ok := range r.Ann.LiveOut {
			if ok {
				if v := p.Var(name); v != nil {
					info.setLive(v)
				}
			}
		}
	default:
		for local := range idx.Vars {
			info.live.Set(int32(local))
		}
	}
}

func (info *RegionInfo) setLive(v *ir.Var) {
	if local := info.idx.LocalOf(v); local >= 0 {
		info.live.Set(local)
		return
	}
	if info.extraLive == nil {
		info.extraLive = make(map[*ir.Var]bool)
	}
	info.extraLive[v] = true
}

func (info *RegionInfo) setPrivate(v *ir.Var) {
	if local := info.idx.LocalOf(v); local >= 0 {
		info.priv.Set(local)
		return
	}
	if info.extraPriv == nil {
		info.extraPriv = make(map[*ir.Var]bool)
	}
	info.extraPriv[v] = true
}

// inferPrivate applies the declared private annotation, infers
// privatizable variables, and removes private variables from the live-out
// set (they are by construction dead at region exit).
func inferPrivate(info *RegionInfo, p *ir.Program, r *ir.Region) {
	idx := info.idx
	// Private variables: declared ones first.
	for name, ok := range r.Ann.Private {
		if ok {
			if v := p.Var(name); v != nil {
				info.setPrivate(v)
			}
		}
	}
	// Inferred: a variable is privatizable when every segment that
	// references it must-defines it before any read (WriteAttr) and it is
	// not live after the region. Such a variable carries no value across
	// segments, so each segment can use its own copy.
	for local := int32(0); local < int32(len(idx.Vars)); local++ {
		if info.priv.Get(local) || info.live.Get(local) || info.ro.Get(local) {
			continue
		}
		ok := true
		for segPos := int32(0); segPos < int32(idx.NumSegs); segPos++ {
			if !info.RefdAt(segPos, local) {
				continue
			}
			if info.AttrAt(segPos, local) != WriteAttr {
				ok = false
				break
			}
		}
		if ok {
			info.priv.Set(local)
		}
	}
	// Private variables are by construction dead at region exit.
	for local := int32(0); local < int32(len(idx.Vars)); local++ {
		if info.priv.Get(local) {
			info.live.Clear(local)
		}
	}
	for v := range info.extraPriv {
		delete(info.extraLive, v)
	}
}

// progScratch pools the inter-region liveness state of AnalyzeProgram.
var progPool = sync.Pool{New: func() any {
	return &programScratch{progOf: make(map[*ir.Var]int32)}
}}

type programScratch struct {
	progOf   map[*ir.Var]int32
	progVars []*ir.Var
	live     ir.Bits
}

// AnalyzeProgram runs AnalyzeRegion over every region with a backward
// inter-region liveness pass: a variable is live out of region i when a
// later region reads it (conservatively: references it at all) before the
// end of the program, or when the final region's LiveOut annotation (or
// the everything-live default) says so.
func AnalyzeProgram(p *ir.Program) map[*ir.Region]*RegionInfo {
	out := make(map[*ir.Region]*RegionInfo, len(p.Regions))
	sc := progPool.Get().(*programScratch)
	clear(sc.progOf)
	sc.progVars = sc.progVars[:0]
	progIdx := func(v *ir.Var) int32 {
		if i, ok := sc.progOf[v]; ok {
			return i
		}
		i := int32(len(sc.progVars))
		sc.progOf[v] = i
		sc.progVars = append(sc.progVars, v)
		return i
	}
	// Pre-number every variable any region references, so bitsets have a
	// stable width during the backward pass.
	for _, v := range p.Vars {
		progIdx(v)
	}
	sc.live = ir.GrowBits(sc.live, len(sc.progVars))

	last := len(p.Regions) - 1
	for i := last; i >= 0; i-- {
		r := p.Regions[i]
		info := analyzeRegionAttrs(r)
		if i == last {
			resolveLiveOut(info, p, r, nil, nil, nil) // annotation or conservative default
		} else {
			resolveLiveOut(info, p, r, nil, sc.live, sc.progVars)
		}
		inferPrivate(info, p, r)
		out[r] = info
		// Conservative transfer: anything referenced in r or live after r
		// is live before r (no whole-region kill at aggregate
		// granularity).
		for local, v := range info.idx.Vars {
			l := int32(local)
			if info.live.Get(l) || !info.priv.Get(l) {
				sc.live.Set(progIdx(v))
			}
		}
		for v := range info.extraLive {
			sc.live.Set(progIdx(v))
		}
	}
	progPool.Put(sc)
	return out
}
