// Package dataflow implements the prerequisite compiler analyses the paper
// assumes from a state-of-the-art parallelizing compiler (§4.2.1): per-
// segment variable summaries (the Write/Read/Null node attributes consumed
// by Algorithm 1), region live-out analysis, read-only variable detection,
// and private (privatizable) variable detection in the style of Tu and
// Padua's array/scalar privatization.
package dataflow

import (
	"refidem/internal/ir"
)

// Attr is the per-(segment, variable) attribute of Algorithm 1.
type Attr uint8

const (
	// NullAttr: the segment has no reference to the variable (or only
	// references that neither must-define it nor expose a read; see
	// SegAttrs).
	NullAttr Attr = iota
	// ReadAttr: some path through the segment reads the variable before
	// any write to it (an exposed read).
	ReadAttr
	// WriteAttr: the variable is defined on all paths through the segment
	// without an exposed read (a must-definition covering every read).
	WriteAttr
)

func (a Attr) String() string {
	switch a {
	case ReadAttr:
		return "Read"
	case WriteAttr:
		return "Write"
	default:
		return "Null"
	}
}

// state tracks, during the structured walk of a segment body, what has
// happened to one variable so far along all paths.
type state struct {
	// mustDef: the variable is written on every path up to this point.
	mustDef bool
	// exposed: some path up to this point reads the variable before any
	// write to it on that path.
	exposed bool
	// referenced: any reference at all was seen.
	referenced bool
}

// merge combines the states of two alternative branches.
func merge(a, b state) state {
	return state{
		mustDef:    a.mustDef && b.mustDef,
		exposed:    a.exposed || b.exposed,
		referenced: a.referenced || b.referenced,
	}
}

// SegAttrs computes the Algorithm 1 attribute of every variable referenced
// in the segment, at whole-variable granularity. Array element writes never
// must-define the whole array (the write covers one cell), so arrays with
// any read get ReadAttr and arrays with only writes get NullAttr; the
// loop-region RFW analysis refines arrays location-wise using dependence
// tests instead. Scalars are tracked precisely through the structured
// control flow of the segment body.
func SegAttrs(seg *ir.Segment) map[*ir.Var]Attr {
	states := make(map[*ir.Var]state)
	walkStmts(seg.Body, states)
	if seg.Branch != nil {
		for _, ref := range ir.ExprRefs(seg.Branch) {
			readRef(ref, states)
		}
	}
	out := make(map[*ir.Var]Attr, len(states))
	for v, st := range states {
		if !st.referenced {
			continue
		}
		switch {
		case st.mustDef && !st.exposed:
			out[v] = WriteAttr
		case st.exposed:
			out[v] = ReadAttr
		default:
			// Referenced, but neither must-defined nor exposed-read:
			// e.g. a conditional write, or an array with only element
			// writes. Null per Algorithm 1's attribute rules.
			out[v] = NullAttr
		}
	}
	return out
}

func walkStmts(stmts []ir.Stmt, states map[*ir.Var]state) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ir.Assign:
			for _, ref := range ir.ExprRefs(s.RHS) {
				readRef(ref, states)
			}
			for _, sub := range s.LHS.Subs {
				for _, ref := range ir.ExprRefs(sub) {
					readRef(ref, states)
				}
			}
			writeRef(s.LHS, states)
		case *ir.If:
			for _, ref := range ir.ExprRefs(s.Cond) {
				readRef(ref, states)
			}
			// Analyze both arms from the current state and merge.
			thenSt := cloneStates(states)
			elseSt := cloneStates(states)
			walkStmts(s.Then, thenSt)
			walkStmts(s.Else, elseSt)
			mergeInto(states, thenSt, elseSt)
		case *ir.For:
			trips := ir.LoopInfo{From: s.From, To: s.To, Step: s.Step}.Trips()
			if trips == 0 {
				continue
			}
			// The loop executes at least once (static bounds), so its
			// body's first iteration effects apply unconditionally.
			walkStmts(s.Body, states)
		case *ir.ExitRegion:
			for _, ref := range ir.ExprRefs(s.Cond) {
				readRef(ref, states)
			}
		}
	}
}

func readRef(ref *ir.Ref, states map[*ir.Var]state) {
	st := states[ref.Var]
	st.referenced = true
	if !st.mustDef {
		st.exposed = true
	}
	states[ref.Var] = st
}

func writeRef(ref *ir.Ref, states map[*ir.Var]state) {
	st := states[ref.Var]
	st.referenced = true
	// An element write to an array does not must-define the aggregate.
	if ref.Var.IsScalar() {
		st.mustDef = true
	}
	states[ref.Var] = st
}

func cloneStates(m map[*ir.Var]state) map[*ir.Var]state {
	out := make(map[*ir.Var]state, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func mergeInto(dst, a, b map[*ir.Var]state) {
	vars := make(map[*ir.Var]bool)
	for v := range a {
		vars[v] = true
	}
	for v := range b {
		vars[v] = true
	}
	for v := range vars {
		dst[v] = merge(a[v], b[v])
	}
}

// RegionInfo aggregates the prerequisite analysis results for one region.
type RegionInfo struct {
	// Attrs maps segment ID to the per-variable Algorithm 1 attributes.
	Attrs map[int]map[*ir.Var]Attr
	// LiveOut holds the variables live after the region exit.
	LiveOut map[*ir.Var]bool
	// ReadOnly holds the variables with no write reference in the region.
	ReadOnly map[*ir.Var]bool
	// Private holds the segment-private variables (declared or inferred).
	Private map[*ir.Var]bool
}

// AnalyzeRegion computes the RegionInfo of r. liveOut gives the variables
// live after the region; if nil, the region's LiveOut annotation is used,
// and if that is also absent every referenced non-private variable is
// conservatively considered live.
func AnalyzeRegion(p *ir.Program, r *ir.Region, liveOut map[*ir.Var]bool) *RegionInfo {
	info := &RegionInfo{
		Attrs:    make(map[int]map[*ir.Var]Attr),
		LiveOut:  make(map[*ir.Var]bool),
		ReadOnly: make(map[*ir.Var]bool),
		Private:  make(map[*ir.Var]bool),
	}
	for _, seg := range r.Segments {
		info.Attrs[seg.ID] = SegAttrs(seg)
	}

	// Read-only: no write reference anywhere in the region.
	written := make(map[*ir.Var]bool)
	for _, ref := range r.Refs {
		if ref.Access == ir.Write {
			written[ref.Var] = true
		}
	}
	for _, v := range r.RegionVars() {
		if !written[v] {
			info.ReadOnly[v] = true
		}
	}

	// Live-out resolution.
	switch {
	case liveOut != nil:
		for v, ok := range liveOut {
			if ok {
				info.LiveOut[v] = true
			}
		}
	case r.Ann.LiveOut != nil:
		for name, ok := range r.Ann.LiveOut {
			if ok {
				if v := p.Var(name); v != nil {
					info.LiveOut[v] = true
				}
			}
		}
	default:
		for _, v := range r.RegionVars() {
			info.LiveOut[v] = true
		}
	}

	// Private variables: declared ones first.
	for name, ok := range r.Ann.Private {
		if ok {
			if v := p.Var(name); v != nil {
				info.Private[v] = true
			}
		}
	}
	// Inferred: a variable is privatizable when every segment that
	// references it must-defines it before any read (WriteAttr) and it is
	// not live after the region. Such a variable carries no value across
	// segments, so each segment can use its own copy.
	for _, v := range r.RegionVars() {
		if info.Private[v] || info.LiveOut[v] || info.ReadOnly[v] {
			continue
		}
		ok := true
		for _, seg := range r.Segments {
			attr, referenced := info.Attrs[seg.ID][v]
			if !referenced {
				continue
			}
			if attr != WriteAttr {
				ok = false
				break
			}
		}
		if ok {
			info.Private[v] = true
		}
	}
	// Private variables are by construction dead at region exit.
	for v := range info.Private {
		delete(info.LiveOut, v)
	}
	return info
}

// AnalyzeProgram runs AnalyzeRegion over every region with a backward
// inter-region liveness pass: a variable is live out of region i when a
// later region reads it (conservatively: references it at all) before the
// end of the program, or when the final region's LiveOut annotation (or
// the everything-live default) says so.
func AnalyzeProgram(p *ir.Program) map[*ir.Region]*RegionInfo {
	out := make(map[*ir.Region]*RegionInfo, len(p.Regions))
	// live accumulates liveness backwards from the program end.
	var live map[*ir.Var]bool
	last := len(p.Regions) - 1
	infos := make([]*RegionInfo, len(p.Regions))
	for i := last; i >= 0; i-- {
		r := p.Regions[i]
		var liveOut map[*ir.Var]bool
		if i == last {
			liveOut = nil // use annotation or conservative default
		} else {
			liveOut = make(map[*ir.Var]bool, len(live))
			for v, ok := range live {
				if ok {
					liveOut[v] = true
				}
			}
			// The region's own annotation can only add liveness.
			for name, ok := range r.Ann.LiveOut {
				if ok {
					if v := p.Var(name); v != nil {
						liveOut[v] = true
					}
				}
			}
		}
		infos[i] = AnalyzeRegion(p, r, liveOut)
		out[r] = infos[i]
		// Conservative transfer: anything referenced in r or live after r
		// is live before r (no whole-region kill at aggregate
		// granularity).
		if live == nil {
			live = make(map[*ir.Var]bool)
		}
		for v := range infos[i].LiveOut {
			live[v] = true
		}
		for _, v := range r.RegionVars() {
			if !infos[i].Private[v] {
				live[v] = true
			}
		}
	}
	return out
}
