package dataflow

// Differential test keeping the stand-alone SegAttrs walker and the
// dense-index region walk of AnalyzeRegion in lockstep across a
// population of generated programs.

import (
	"testing"

	"refidem/internal/gen"
)

func TestSegAttrsMatchesDenseWalk(t *testing.T) {
	for _, prof := range gen.Profiles() {
		for seed := int64(1); seed <= 25; seed++ {
			sc := gen.Generate(seed, prof.Cfg)
			p := sc.Program
			if err := p.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", prof.Name, seed, err)
			}
			for _, r := range p.Regions {
				info := AnalyzeRegion(p, r, nil)
				idx := info.Index()
				for _, seg := range r.Segments {
					m := SegAttrs(seg)
					segPos := idx.SegPos(seg.ID)
					for local, v := range idx.Vars {
						attr, referenced := m[v]
						if got := info.RefdAt(segPos, int32(local)); got != referenced {
							t.Fatalf("%s seed %d region %s seg %d var %s: referenced dense=%v map=%v",
								prof.Name, seed, r.Name, seg.ID, v.Name, got, referenced)
						}
						if got := info.AttrAt(segPos, int32(local)); got != attr {
							t.Fatalf("%s seed %d region %s seg %d var %s: attr dense=%v map=%v",
								prof.Name, seed, r.Name, seg.ID, v.Name, got, attr)
						}
					}
				}
			}
		}
	}
}
