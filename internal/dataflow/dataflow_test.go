package dataflow

import (
	"testing"

	"refidem/internal/ir"
)

// seg builds a one-off segment with the given body.
func seg(body ...ir.Stmt) *ir.Segment {
	return &ir.Segment{ID: 0, Body: body}
}

func TestSegAttrsScalarWriteFirst(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	s := seg(
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(1)},
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.AddE(ir.Rd(x), ir.C(1))},
	)
	attrs := SegAttrs(s)
	if attrs[x] != WriteAttr {
		t.Errorf("write-then-read scalar: attr = %v, want Write", attrs[x])
	}
}

func TestSegAttrsExposedRead(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	s := seg(&ir.Assign{LHS: ir.Wr(x), RHS: ir.Rd(x)})
	if attrs := SegAttrs(s); attrs[x] != ReadAttr {
		t.Errorf("read-before-write: attr = %v, want Read", attrs[x])
	}
}

func TestSegAttrsConditionalWriteIsNull(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	c := p.AddVar("c")
	s := seg(&ir.If{Cond: ir.Rd(c), Then: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(1)},
	}})
	attrs := SegAttrs(s)
	if attrs[x] != NullAttr {
		t.Errorf("conditional write: attr = %v, want Null", attrs[x])
	}
	if attrs[c] != ReadAttr {
		t.Errorf("condition read: attr = %v, want Read", attrs[c])
	}
}

func TestSegAttrsBothBranchesWrite(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	c := p.AddVar("c")
	s := seg(&ir.If{
		Cond: ir.Rd(c),
		Then: []ir.Stmt{&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(1)}},
		Else: []ir.Stmt{&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(2)}},
	})
	if attrs := SegAttrs(s); attrs[x] != WriteAttr {
		t.Errorf("write in both branches: attr = %v, want Write", attrs[x])
	}
}

func TestSegAttrsReadInOneBranchAfterWrite(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	c := p.AddVar("c")
	// x=1; if c { =x }  -> covered read, Write attr.
	s := seg(
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(1)},
		&ir.If{Cond: ir.Rd(c), Then: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(c), RHS: ir.Rd(x)},
		}},
	)
	if attrs := SegAttrs(s); attrs[x] != WriteAttr {
		t.Errorf("covered read: attr = %v, want Write", attrs[x])
	}
}

func TestSegAttrsArray(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.AddVar("a", 8)
	b := p.AddVar("b", 8)
	s := seg(
		&ir.Assign{LHS: ir.Wr(a, ir.C(0)), RHS: ir.C(1)},           // write-only array: Null
		&ir.Assign{LHS: ir.Wr(a, ir.C(1)), RHS: ir.Rd(b, ir.C(0))}, // read array: Read
	)
	attrs := SegAttrs(s)
	if attrs[a] != NullAttr {
		t.Errorf("element-written array: attr = %v, want Null", attrs[a])
	}
	if attrs[b] != ReadAttr {
		t.Errorf("read array: attr = %v, want Read", attrs[b])
	}
	// Even write-then-read of the same element is exposed at aggregate
	// granularity (the write does not must-define the aggregate).
	s2 := seg(
		&ir.Assign{LHS: ir.Wr(a, ir.C(0)), RHS: ir.C(1)},
		&ir.Assign{LHS: ir.Wr(b, ir.C(0)), RHS: ir.Rd(a, ir.C(0))},
	)
	if attrs := SegAttrs(s2); attrs[a] != ReadAttr {
		t.Errorf("array write-then-read: attr = %v, want Read (conservative)", attrs[a])
	}
}

func TestSegAttrsInnerLoop(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	y := p.AddVar("y")
	// for j { x = j; y = x } -> x Write, y Write.
	s := seg(&ir.For{Index: "j", From: 1, To: 3, Step: 1, Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.Idx("j")},
		&ir.Assign{LHS: ir.Wr(y), RHS: ir.Rd(x)},
	}})
	attrs := SegAttrs(s)
	if attrs[x] != WriteAttr || attrs[y] != WriteAttr {
		t.Errorf("attrs = x:%v y:%v, want Write Write", attrs[x], attrs[y])
	}
	// Zero-trip loop contributes nothing.
	s2 := seg(&ir.For{Index: "j", From: 3, To: 1, Step: 1, Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(0)},
	}})
	if attrs := SegAttrs(s2); attrs[x] != NullAttr {
		t.Errorf("zero-trip loop: attr = %v, want Null (unreferenced)", attrs[x])
	}
}

func TestSegAttrsLoopCarriedRead(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	// for j { = x; x = j } -> exposed read on first iteration.
	s := seg(&ir.For{Index: "j", From: 1, To: 3, Step: 1, Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(p.AddVar("y")), RHS: ir.Rd(x)},
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.Idx("j")},
	}})
	if attrs := SegAttrs(s); attrs[x] != ReadAttr {
		t.Errorf("loop-carried: attr = %v, want Read", attrs[x])
	}
}

func TestSegAttrsBranchCondition(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	s := &ir.Segment{ID: 0, Branch: ir.Rd(x), Succs: []int{1, 2}}
	if attrs := SegAttrs(s); attrs[x] != ReadAttr {
		t.Errorf("branch condition: attr = %v, want Read", attrs[x])
	}
}

func buildRegion(p *ir.Program, name string, body []ir.Stmt) *ir.Region {
	r := &ir.Region{
		Name: name, Kind: ir.LoopRegion, Index: "k", From: 1, To: 4, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: body}},
	}
	r.Finalize()
	p.AddRegion(r)
	return r
}

func TestAnalyzeRegionReadOnlyAndPrivate(t *testing.T) {
	p := ir.NewProgram("t")
	ro := p.AddVar("ro", 8)
	tv := p.AddVar("tv")
	out := p.AddVar("out", 8)
	r := buildRegion(p, "r", []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(tv), RHS: ir.Rd(ro, ir.Idx("k"))},
		&ir.Assign{LHS: ir.Wr(out, ir.Idx("k")), RHS: ir.Rd(tv)},
	})
	r.Ann.LiveOut = map[string]bool{"out": true}
	info := AnalyzeRegion(p, r, nil)
	if !info.ReadOnly(ro) {
		t.Error("ro should be read-only")
	}
	if !info.Private(tv) {
		t.Error("tv should be inferred private (write-before-read, dead after region)")
	}
	if info.Private(out) || info.ReadOnly(out) {
		t.Error("out misclassified")
	}
	if !info.LiveOut(out) || info.LiveOut(tv) {
		t.Errorf("LiveOut(out)=%v LiveOut(tv)=%v", info.LiveOut(out), info.LiveOut(tv))
	}
}

func TestAnalyzeRegionLiveScalarNotPrivate(t *testing.T) {
	p := ir.NewProgram("t")
	tv := p.AddVar("tv")
	r := buildRegion(p, "r", []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(tv), RHS: ir.Idx("k")},
	})
	r.Ann.LiveOut = map[string]bool{"tv": true}
	info := AnalyzeRegion(p, r, nil)
	if info.Private(tv) {
		t.Error("live-out scalar must not be private")
	}
}

func TestAnalyzeRegionDeclaredPrivate(t *testing.T) {
	p := ir.NewProgram("t")
	w := p.AddVar("w", 8)
	r := buildRegion(p, "r", []ir.Stmt{
		// Read-before-write: not inferable as private, but declared.
		&ir.Assign{LHS: ir.Wr(w, ir.Idx("k")), RHS: ir.Rd(w, ir.Idx("k"))},
	})
	r.Ann.Private = map[string]bool{"w": true}
	info := AnalyzeRegion(p, r, nil)
	if !info.Private(w) {
		t.Error("declared private not honored")
	}
	if info.LiveOut(w) {
		t.Error("private vars are dead at region exit")
	}
}

func TestAnalyzeRegionDefaultLiveOutConservative(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x", 8)
	r := buildRegion(p, "r", []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(x, ir.Idx("k")), RHS: ir.C(1)},
	})
	info := AnalyzeRegion(p, r, nil)
	if !info.LiveOut(x) {
		t.Error("without annotation, referenced vars default to live")
	}
}

func TestAnalyzeProgramInterRegionLiveness(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.AddVar("a", 8)
	b := p.AddVar("b", 8)
	r1 := buildRegion(p, "r1", []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(a, ir.Idx("k")), RHS: ir.C(1)},
	})
	r2 := buildRegion(p, "r2", []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(b, ir.Idx("k")), RHS: ir.Rd(a, ir.Idx("k"))},
	})
	r2.Ann.LiveOut = map[string]bool{"b": true}
	infos := AnalyzeProgram(p)
	if !infos[r1].LiveOut(a) {
		t.Error("a is read by r2, so it is live out of r1")
	}
	if !infos[r2].LiveOut(b) || infos[r2].LiveOut(a) {
		t.Errorf("r2 LiveOut(b)=%v LiveOut(a)=%v", infos[r2].LiveOut(b), infos[r2].LiveOut(a))
	}
}

func TestAttrString(t *testing.T) {
	if NullAttr.String() != "Null" || ReadAttr.String() != "Read" || WriteAttr.String() != "Write" {
		t.Error("Attr.String broken")
	}
}
