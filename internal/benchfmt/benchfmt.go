// Package benchfmt defines the BENCH_results.json document shape shared
// by cmd/benchjson (which writes and gates it from `go test -bench`
// output) and cmd/loadbench (which merges served-throughput rows into
// it). One definition means the two tools cannot silently drift and
// drop each other's fields on a read-modify-write.
package benchfmt

// Result holds one benchmark's parsed measurements.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the BENCH_results.json shape: current measurements plus
// the embedded reference baseline.
type Document struct {
	Go         string            `json:"go,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
	Baseline   map[string]Result `json:"baseline,omitempty"`
}
