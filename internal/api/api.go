// Package api is the versioned wire protocol of the analysis service:
// the /v1 request and response documents, the operation names, and the
// typed error taxonomy mapping service failures to HTTP semantics.
//
// The package exists so that every program speaking the protocol —
// internal/service (the server), internal/api/client (the typed client),
// cmd/refidemd, cmd/refidem-router (which is a client of the replicas
// and a server of the same API) and cmd/loadbench — imports one
// definition. Documents are byte-deterministic: encoding/json emits
// struct fields in declaration order, so the bytes of a marshaled
// response are a pure function of its values, and moving a type between
// packages cannot change them. The golden tests under cmd/refidemd pin
// the /v1 encoding.
//
// Versioning: these types are the v1 wire contract. Compatible
// extension means adding optional (omitempty) request fields — the
// server rejects unknown fields, so clients never send fields a v1
// server lacks silently — and appending response fields, which changes
// bytes and therefore requires a new analysis version for the
// persistent store (see internal/service.AnalysisVersion).
package api

import "encoding/json"

// Operation names. The HTTP endpoints imply them; batch items carry them
// explicitly.
const (
	OpLabel    = "label"
	OpSimulate = "simulate"
)

// Request is one analysis request. Exactly one of Program (mini-language
// source text), Example (a built-in worked example: fig1, fig2, fig3,
// buts) and Base (a delta request: the fingerprint of a previously
// analyzed base program, plus region Patches) selects the program.
type Request struct {
	// Op is the operation: OpLabel or OpSimulate. The typed endpoints
	// (Label, Simulate, /v1/label, /v1/simulate) fill it in; batch items
	// must set it.
	Op string `json:"op,omitempty"`
	// Program is mini-language source text (see internal/lang).
	Program string `json:"program,omitempty"`
	// Example names a built-in program: fig1, fig2, fig3, buts.
	Example string `json:"example,omitempty"`
	// Base is the hex content fingerprint of a previously analyzed
	// program (the "fingerprint" field of its response document). The
	// server resolves the request's program by applying Patches to the
	// base; regions the patches leave structurally unchanged reuse their
	// cached labeling instead of being recomputed. A server that no
	// longer holds the base answers ErrUnknownBase (HTTP 404) and the
	// client falls back to sending the full program.
	Base string `json:"base,omitempty"`
	// Patches are the region-level edits of a delta request, applied to
	// the base program in order. Only meaningful with Base.
	Patches []RegionPatch `json:"patches,omitempty"`
	// Deps includes the may-dependence list in label responses.
	Deps bool `json:"deps,omitempty"`
	// Procs overrides the simulated processor count (simulate only;
	// 0 keeps the server's base machine).
	Procs int `json:"procs,omitempty"`
	// Capacity overrides the per-segment speculative storage capacity
	// (simulate only; 0 keeps the server's base machine).
	Capacity int `json:"capacity,omitempty"`
}

// RegionPatch replaces (or, for a new region name, appends) one region of
// a delta request's base program.
type RegionPatch struct {
	// Region is the name of the region to replace. A name not present in
	// the base appends the region after the existing ones.
	Region string `json:"region"`
	// Source is the full region block in mini-language syntax
	// ("region NAME loop ... { ... }"). It may only reference variables
	// and procedures the base program declares.
	Source string `json:"source"`
}

// LabelResponse is the document served for label requests. Field order,
// slice ordering and float formatting are all deterministic: identical
// programs yield byte-identical documents.
type LabelResponse struct {
	Op          string           `json:"op"`
	Program     string           `json:"program"`
	Fingerprint string           `json:"fingerprint"`
	Regions     []RegionLabeling `json:"regions"`
}

// RegionLabeling is one region's labeling in a LabelResponse.
type RegionLabeling struct {
	Name             string             `json:"name"`
	Kind             string             `json:"kind"`
	FullyIndependent bool               `json:"fully_independent"`
	IdemFraction     float64            `json:"idem_fraction"`
	Categories       []CategoryFraction `json:"categories,omitempty"`
	Refs             []RefLabel         `json:"refs"`
	Deps             []string           `json:"deps,omitempty"`
}

// CategoryFraction reports the static fraction of one idempotency
// category (only categories with a non-zero fraction appear, in the
// paper's §4.1 order).
type CategoryFraction struct {
	Category string  `json:"category"`
	Fraction float64 `json:"fraction"`
}

// RefLabel is one reference row: the same evidence cmd/idemlabel prints.
type RefLabel struct {
	Ref      string `json:"ref"`
	Segment  string `json:"segment"`
	Label    string `json:"label"`
	Category string `json:"category"`
	// RFW reports re-occurring-first-write status; writes only.
	RFW       *bool `json:"rfw,omitempty"`
	CrossSink bool  `json:"cross_sink"`
}

// SimulateResponse is the document served for simulate requests.
type SimulateResponse struct {
	Op           string     `json:"op"`
	Program      string     `json:"program"`
	Fingerprint  string     `json:"fingerprint"`
	Processors   int        `json:"processors"`
	SpecCapacity int        `json:"spec_capacity"`
	Models       []ModelRow `json:"models"`
	// Verified reports that both speculative runs reproduced the
	// sequential live-out memory state (it is always true in a served
	// response; a mismatch is an error instead).
	Verified bool `json:"verified"`
}

// ModelRow is one execution model's outcome in a SimulateResponse.
type ModelRow struct {
	Mode                string  `json:"mode"`
	Cycles              int64   `json:"cycles"`
	Speedup             float64 `json:"speedup"`
	DynRefs             int64   `json:"dyn_refs"`
	IdemRefs            int64   `json:"idem_refs"`
	Overflows           int64   `json:"overflows"`
	OverflowStallCycles int64   `json:"overflow_stall_cycles"`
	FlowViolations      int64   `json:"flow_violations"`
	ControlViolations   int64   `json:"control_violations"`
	PeakSpecOccupancy   int     `json:"peak_spec_occupancy"`
	UtilizationPct      float64 `json:"utilization_pct"`
}

// BatchRequest is the /v1/batch document.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchResponse is the /v1/batch reply: one entry per request, in order.
// Failed items carry {"error": ...} in place of their response document.
type BatchResponse struct {
	Responses []json.RawMessage `json:"responses"`
}

// Health is the /healthz document. Field order is fixed; the document is
// deterministic given the counters it reports.
type Health struct {
	// Status is "ok" whenever the server is accepting requests; the
	// store degrading does not make the server unhealthy, it makes it
	// memory-only.
	Status string `json:"status"`
	// Store is "ok", "degraded" or "disabled".
	Store string `json:"store"`
	// Tracing reports whether the simulate engines run with the trace
	// JIT enabled (Config.Engine.Traced). It changes simulate cycle
	// counts, never results, so clients comparing documents across
	// servers need to know.
	Tracing bool `json:"tracing"`
	// StoreQuarantined counts records the backend quarantined (recovery
	// scan plus runtime detections). Always 0 when the store is disabled.
	StoreQuarantined int64 `json:"store_quarantined"`
	// StoreWarmHits counts requests answered from the warm-start index.
	StoreWarmHits int64 `json:"store_warm_hits"`
	// StoreWarmEntries is the number of warm-start records not yet
	// served.
	StoreWarmEntries int64 `json:"store_warm_entries"`
}
