package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err    error
		code   string
		status int
	}{
		{fmt.Errorf("%w: boom", ErrBadRequest), "bad_request", 400},
		{fmt.Errorf("%w: ab12", ErrUnknownBase), "unknown_base", 404},
		{ErrOverloaded, "overloaded", 503},
		{ErrTimeout, "timeout", 504},
		{ErrClosed, "closed", 503},
		{context.Canceled, "canceled", 503},
		{errors.New("mystery"), "internal", 500},
	}
	for _, tc := range cases {
		c := Classify(tc.err)
		if c.Code != tc.code || c.Status != tc.status {
			t.Errorf("Classify(%v) = %s/%d, want %s/%d", tc.err, c.Code, c.Status, tc.code, tc.status)
		}
	}
}

// WriteError → ErrorFromStatus must round-trip every taxonomy class:
// same sentinel under errors.Is, message preserved verbatim, Retry-After
// hint carried. This is the property that makes the router's re-served
// errors indistinguishable from the replica's own.
func TestErrorWireRoundTrip(t *testing.T) {
	cases := []error{
		fmt.Errorf("%w: 3:1: expected expression", ErrBadRequest),
		fmt.Errorf("%w: ab12cd", ErrUnknownBase),
		ErrOverloaded,
		fmt.Errorf("%w", ErrTimeout),
		ErrClosed,
	}
	for _, orig := range cases {
		rec := httptest.NewRecorder()
		WriteError(rec, orig)
		got := ErrorFromStatus(rec.Code, rec.Header().Get("Retry-After"), rec.Body.Bytes())

		origClass := Classify(orig)
		if !errors.Is(got, origClass.Err) {
			t.Errorf("%v: round-trip lost the sentinel (got %v)", orig, got)
		}
		if got.Error() != orig.Error() {
			t.Errorf("%v: message changed to %q", orig, got.Error())
		}
		var re *RemoteError
		if !errors.As(got, &re) {
			t.Fatalf("%v: round-trip is %T", orig, got)
		}
		if re.Status != origClass.Status || re.RetryAfterSeconds != origClass.RetryAfter {
			t.Errorf("%v: status/hint = %d/%d, want %d/%d",
				orig, re.Status, re.RetryAfterSeconds, origClass.Status, origClass.RetryAfter)
		}

		// Re-serving the round-tripped error reproduces the original
		// response byte for byte.
		rec2 := httptest.NewRecorder()
		WriteError(rec2, got)
		if rec2.Code != rec.Code || rec2.Body.String() != rec.Body.String() {
			t.Errorf("%v: re-served response differs:\n%d %q\n%d %q",
				orig, rec.Code, rec.Body.String(), rec2.Code, rec2.Body.String())
		}
	}
}

// The two 503 classes must disambiguate by message prefix.
func TestErrorFromStatusDisambiguates503(t *testing.T) {
	closed := ErrorFromStatus(503, "", []byte(`{"error":"server closed"}`))
	if !errors.Is(closed, ErrClosed) || errors.Is(closed, ErrOverloaded) {
		t.Fatalf("closed 503 classified as %v", closed)
	}
	over := ErrorFromStatus(503, "1", []byte(`{"error":"overloaded: admission queue full"}`))
	if !errors.Is(over, ErrOverloaded) {
		t.Fatalf("overloaded 503 classified as %v", over)
	}
}

// Statuses and bodies the server never produced (a proxy's own error
// page, say) still classify by status, or wrap nothing when unknown.
func TestErrorFromStatusForeignResponses(t *testing.T) {
	byStatus := ErrorFromStatus(400, "", []byte("<html>nginx</html>"))
	if !errors.Is(byStatus, ErrBadRequest) {
		t.Fatalf("foreign 400: %v", byStatus)
	}
	unknown := ErrorFromStatus(http.StatusTeapot, "", nil)
	var re *RemoteError
	if !errors.As(unknown, &re) || re.Status != http.StatusTeapot {
		t.Fatalf("foreign 418: %v", unknown)
	}
	for _, c := range Taxonomy {
		if errors.Is(unknown, c.Err) {
			t.Fatalf("418 wrongly unwraps to %v", c.Err)
		}
	}
	if unknown.Error() != "http status 418" {
		t.Fatalf("empty-body message = %q", unknown.Error())
	}
}
