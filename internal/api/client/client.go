// Package client is the typed Go client of the analysis service's /v1
// API (internal/api): request marshaling, status-to-error mapping back
// onto the api taxonomy, and the jittered overload-backoff policy every
// driver in the repository previously hand-rolled.
//
// Errors returned for non-200 responses are *api.RemoteError values:
// errors.Is(err, api.ErrOverloaded) and friends branch identically to
// the in-process service API, and the server's Retry-After hint rides
// along for the backoff schedule. The client adds nothing to response
// bytes — a Label call returns exactly the document the server wrote, so
// byte-identity oracles can compare responses across transports and
// replicas.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"refidem/internal/api"
)

// maxErrorBody bounds how much of a failed response's body is read for
// the error document.
const maxErrorBody = 64 << 10

// Client speaks the /v1 API against one base URL. The zero value is not
// usable; construct with New. Safe for concurrent use (http.Client is).
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8347".
	Base string
	// HTTP is the underlying HTTP client. New installs a default with a
	// 60-second overall timeout.
	HTTP *http.Client
}

// New returns a client for the server at base (scheme://host:port, no
// trailing slash required). The default transport keeps enough idle
// connections per host for heavily concurrent callers (load drivers, the
// router) to reuse connections instead of churning handshakes —
// net/http's default of 2 serializes exactly the workloads this client
// exists for.
func New(base string) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 256
	return &Client{Base: base, HTTP: &http.Client{Timeout: 60 * time.Second, Transport: tr}}
}

// Label posts the request to /v1/label and returns the response document
// bytes verbatim.
func (c *Client) Label(ctx context.Context, req api.Request) ([]byte, error) {
	return c.post(ctx, "/v1/label", req)
}

// Simulate posts the request to /v1/simulate and returns the response
// document bytes verbatim.
func (c *Client) Simulate(ctx context.Context, req api.Request) ([]byte, error) {
	return c.post(ctx, "/v1/simulate", req)
}

// Do posts the request to the endpoint matching its Op.
func (c *Client) Do(ctx context.Context, req api.Request) ([]byte, error) {
	switch req.Op {
	case api.OpLabel:
		return c.Label(ctx, req)
	case api.OpSimulate:
		return c.Simulate(ctx, req)
	}
	return nil, fmt.Errorf("%w: unknown op %q", api.ErrBadRequest, req.Op)
}

// Batch posts the requests to /v1/batch and returns the per-item raw
// documents in order (failed items are {"error": ...} documents, per the
// wire contract).
func (c *Client) Batch(ctx context.Context, reqs []api.Request) ([]json.RawMessage, error) {
	raw, err := c.post(ctx, "/v1/batch", api.BatchRequest{Requests: reqs})
	if err != nil {
		return nil, err
	}
	var out api.BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("bad batch response: %w", err)
	}
	return out.Responses, nil
}

// Health fetches and decodes /healthz. A reachable server always answers
// 200 (a degraded store is reported in the document, not the status), so
// any error here means the server is unreachable or broken — the router's
// health prober treats it as probe failure.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var h api.Health
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	if err != nil {
		return h, err
	}
	if resp.StatusCode != http.StatusOK {
		return h, api.ErrorFromStatus(resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return h, fmt.Errorf("bad health document: %w", err)
	}
	return h, nil
}

// post marshals req, posts it, and returns the response bytes. Non-200
// statuses map to *api.RemoteError via the taxonomy.
func (c *Client) post(ctx context.Context, path string, req any) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		errBody, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		return nil, api.ErrorFromStatus(resp.StatusCode, resp.Header.Get("Retry-After"), errBody)
	}
	return io.ReadAll(resp.Body)
}

// Backoff is the overload-retry schedule: jittered exponential, starting
// at Base, doubling per consecutive rejection, capped at Cap — or at the
// server's Retry-After hint when it sends one (the hint is the server's
// own estimate of when capacity returns, so the schedule never sleeps
// past it). A caller should give up once it has spent Budget asleep: a
// target answering 503 forever (shut down, or a proxy in front of a dead
// daemon) must fail the run instead of spinning indefinitely.
type Backoff struct {
	Base   time.Duration
	Cap    time.Duration
	Budget time.Duration
}

// DefaultBackoff is the schedule the load harness ships: 200 µs doubling
// to a 100 ms cap, giving up after 10 s of cumulative sleep.
func DefaultBackoff() Backoff {
	return Backoff{Base: 200 * time.Microsecond, Cap: 100 * time.Millisecond, Budget: 10 * time.Second}
}

// SleepFor computes the jittered sleep for the attempt-th consecutive
// overload (attempt 0 = first rejection). The jitter func returns a
// uniform value in [0, n) — pass a seeded rand's Int63n; the jitter
// spreads sleeps over [d/2, 3d/2) so retried clients don't re-collide in
// lockstep.
func (b Backoff) SleepFor(attempt int, hint time.Duration, jitter func(int64) int64) time.Duration {
	if attempt > 16 {
		attempt = 16 // the cap has long since taken over; avoid shift overflow
	}
	d := b.Base << attempt
	limit := b.Cap
	if hint > 0 {
		limit = hint
	}
	if d > limit {
		d = limit
	}
	return d/2 + time.Duration(jitter(int64(d)))
}

// RetryAfterHint extracts the server's Retry-After hint from an error
// chain (0 when the error carries none). Works on *api.RemoteError from
// this client and on anything else exposing RetryAfterSeconds the same
// way.
func RetryAfterHint(err error) time.Duration {
	var re *api.RemoteError
	if errors.As(err, &re) && re.RetryAfterSeconds > 0 {
		return time.Duration(re.RetryAfterSeconds) * time.Second
	}
	return 0
}
