package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"refidem/internal/api"
)

// echoServer serves canned bytes for each /v1 path and records the last
// request body it saw.
func echoServer(t *testing.T, status int, retryAfter string, body string) (*Client, *http.Request, *[]byte) {
	t.Helper()
	var lastReq http.Request
	var lastBody []byte
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lastReq = *r
		b := new(bytes.Buffer)
		b.ReadFrom(r.Body)
		lastBody = b.Bytes()
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(status)
		w.Write([]byte(body))
	}))
	t.Cleanup(hs.Close)
	return New(hs.URL), &lastReq, &lastBody
}

func TestClientReturnsBytesVerbatim(t *testing.T) {
	const doc = `{"op":"label","program":"p"}` + "\n"
	c, req, sent := echoServer(t, http.StatusOK, "", doc)
	got, err := c.Label(context.Background(), api.Request{Op: api.OpLabel, Example: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != doc {
		t.Fatalf("bytes not verbatim: %q", got)
	}
	if req.URL.Path != "/v1/label" || req.Method != http.MethodPost {
		t.Fatalf("posted %s %s", req.Method, req.URL.Path)
	}
	var decoded api.Request
	if err := json.Unmarshal(*sent, &decoded); err != nil || decoded.Example != "fig2" {
		t.Fatalf("request body %q: %v", *sent, err)
	}
}

func TestClientDoDispatchesOnOp(t *testing.T) {
	c, req, _ := echoServer(t, http.StatusOK, "", "{}")
	ctx := context.Background()
	if _, err := c.Do(ctx, api.Request{Op: api.OpSimulate, Example: "fig2"}); err != nil {
		t.Fatal(err)
	}
	if req.URL.Path != "/v1/simulate" {
		t.Fatalf("simulate posted to %s", req.URL.Path)
	}
	if _, err := c.Do(ctx, api.Request{Op: "mystery"}); !errors.Is(err, api.ErrBadRequest) {
		t.Fatalf("unknown op: %v", err)
	}
}

// Non-200 statuses must map back onto the taxonomy sentinels, with the
// server's message and Retry-After hint intact.
func TestClientStatusToErrorMapping(t *testing.T) {
	cases := []struct {
		status     int
		retryAfter string
		body       string
		sentinel   error
		hint       time.Duration
	}{
		{http.StatusBadRequest, "", `{"error":"bad request: boom"}`, api.ErrBadRequest, 0},
		{http.StatusNotFound, "", `{"error":"unknown base fingerprint: ab"}`, api.ErrUnknownBase, 0},
		{http.StatusServiceUnavailable, "2", `{"error":"overloaded: admission queue full"}`, api.ErrOverloaded, 2 * time.Second},
		{http.StatusServiceUnavailable, "", `{"error":"server closed"}`, api.ErrClosed, 0},
		{http.StatusGatewayTimeout, "", `{"error":"request deadline exceeded"}`, api.ErrTimeout, 0},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%d_%s", tc.status, tc.body), func(t *testing.T) {
			c, _, _ := echoServer(t, tc.status, tc.retryAfter, tc.body)
			_, err := c.Label(context.Background(), api.Request{Op: api.OpLabel, Example: "fig2"})
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err %v does not unwrap to %v", err, tc.sentinel)
			}
			var re *api.RemoteError
			if !errors.As(err, &re) {
				t.Fatalf("err is %T, want *api.RemoteError", err)
			}
			var doc api.ErrorDoc
			json.Unmarshal([]byte(tc.body), &doc)
			if re.Msg != doc.Error {
				t.Fatalf("msg %q, want server's %q verbatim", re.Msg, doc.Error)
			}
			if got := RetryAfterHint(err); got != tc.hint {
				t.Fatalf("RetryAfterHint = %v, want %v", got, tc.hint)
			}
		})
	}
}

func TestClientBatch(t *testing.T) {
	resp := api.BatchResponse{Responses: []json.RawMessage{
		json.RawMessage(`{"op":"label"}`),
		json.RawMessage(`{"error":"bad request: nope"}`),
	}}
	enc, _ := json.Marshal(resp)
	c, req, sent := echoServer(t, http.StatusOK, "", string(enc))
	got, err := c.Batch(context.Background(), []api.Request{
		{Op: api.OpLabel, Example: "fig2"},
		{Op: api.OpLabel, Program: "broken"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if req.URL.Path != "/v1/batch" {
		t.Fatalf("batch posted to %s", req.URL.Path)
	}
	var decoded api.BatchRequest
	if err := json.Unmarshal(*sent, &decoded); err != nil || len(decoded.Requests) != 2 {
		t.Fatalf("batch body %q: %v", *sent, err)
	}
	if len(got) != 2 || string(got[0]) != `{"op":"label"}` {
		t.Fatalf("batch responses: %v", got)
	}
}

func TestClientHealth(t *testing.T) {
	c, req, _ := echoServer(t, http.StatusOK, "", `{"status":"ok"}`)
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if req.URL.Path != "/healthz" || req.Method != http.MethodGet {
		t.Fatalf("health fetched %s %s", req.Method, req.URL.Path)
	}
	if h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
}

func TestClientHealthErrors(t *testing.T) {
	c, _, _ := echoServer(t, http.StatusServiceUnavailable, "", `{"error":"server closed"}`)
	if _, err := c.Health(context.Background()); !errors.Is(err, api.ErrClosed) {
		t.Fatalf("health error: %v", err)
	}
	dead := New("http://127.0.0.1:1")
	dead.HTTP = &http.Client{Timeout: 100 * time.Millisecond}
	if _, err := dead.Health(context.Background()); err == nil {
		t.Fatal("unreachable server's health succeeded")
	}
}

func TestNewTrimsTrailingSlashes(t *testing.T) {
	c := New("http://x//")
	if c.Base != "http://x" {
		t.Fatalf("Base = %q", c.Base)
	}
}

// The backoff schedule: exponential doubling, capped, hint-limited, with
// the jitter spreading sleeps over [d/2, 3d/2).
func TestBackoffSleepFor(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Cap: 8 * time.Millisecond, Budget: time.Second}
	noJitter := func(int64) int64 { return 0 }

	if got := b.SleepFor(0, 0, noJitter); got != 500*time.Microsecond {
		t.Fatalf("attempt 0 = %v, want 0.5ms", got)
	}
	if got := b.SleepFor(2, 0, noJitter); got != 2*time.Millisecond {
		t.Fatalf("attempt 2 = %v, want 2ms (half of 4ms)", got)
	}
	// Attempt 10 would be 1024ms; the cap holds it at 8ms → sleep 4ms.
	if got := b.SleepFor(10, 0, noJitter); got != 4*time.Millisecond {
		t.Fatalf("attempt 10 = %v, want 4ms (capped)", got)
	}
	// A server hint below the cap becomes the limit.
	if got := b.SleepFor(10, 2*time.Millisecond, noJitter); got != time.Millisecond {
		t.Fatalf("hinted attempt = %v, want 1ms", got)
	}
	// Giant attempts must not overflow the shift.
	if got := b.SleepFor(1000, 0, noJitter); got != 4*time.Millisecond {
		t.Fatalf("attempt 1000 = %v, want 4ms", got)
	}
	// Full jitter lands at the top of [d/2, 3d/2).
	fullJitter := func(n int64) int64 { return n - 1 }
	d := 4 * time.Millisecond
	if got := b.SleepFor(2, 0, fullJitter); got != d/2+d-1 {
		t.Fatalf("jittered attempt = %v, want %v", got, d/2+d-1)
	}
}

func TestRetryAfterHintNonRemote(t *testing.T) {
	if got := RetryAfterHint(errors.New("plain")); got != 0 {
		t.Fatalf("hint for plain error = %v", got)
	}
	if got := RetryAfterHint(nil); got != 0 {
		t.Fatalf("hint for nil = %v", got)
	}
}
