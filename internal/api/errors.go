package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Typed service errors — the protocol's failure taxonomy. The server
// maps them to HTTP statuses with WriteError; the client maps statuses
// back with ErrorFromStatus, so errors.Is branching works identically
// in-process and across the wire.
var (
	// ErrBadRequest wraps malformed requests: unparseable programs,
	// unknown examples, invalid parameters.
	ErrBadRequest = errors.New("bad request")
	// ErrOverloaded is returned when the admission queue is full. The
	// request was not admitted; the caller may retry after the
	// Retry-After hint.
	ErrOverloaded = errors.New("overloaded: admission queue full")
	// ErrClosed is returned for requests submitted after Close began.
	ErrClosed = errors.New("server closed")
	// ErrTimeout is returned when a request exceeds the server's
	// configured per-request deadline. The HTTP layer maps it to 504.
	ErrTimeout = errors.New("request deadline exceeded")
	// ErrUnknownBase is returned for delta requests whose base
	// fingerprint the server does not hold (never analyzed, or evicted
	// from the base registry). The client recovers by re-sending the
	// full program.
	ErrUnknownBase = errors.New("unknown base fingerprint")
)

// ErrorClass is one row of the error taxonomy: the stable wire code, the
// sentinel error it classifies, the HTTP status it is served as, and the
// Retry-After hint in seconds (0 means the response carries none).
type ErrorClass struct {
	Code       string
	Err        error
	Status     int
	RetryAfter int
}

// Taxonomy is the wire-error table, in classification order. WriteError
// and Classify walk it front to back, so more specific classes must
// precede more general ones (they are currently disjoint).
var Taxonomy = []ErrorClass{
	{Code: "bad_request", Err: ErrBadRequest, Status: http.StatusBadRequest},
	{Code: "unknown_base", Err: ErrUnknownBase, Status: http.StatusNotFound},
	{Code: "overloaded", Err: ErrOverloaded, Status: http.StatusServiceUnavailable, RetryAfter: 1},
	{Code: "timeout", Err: ErrTimeout, Status: http.StatusGatewayTimeout},
	{Code: "closed", Err: ErrClosed, Status: http.StatusServiceUnavailable},
}

// internalClass is the fallback for unclassified errors.
var internalClass = ErrorClass{Code: "internal", Status: http.StatusInternalServerError}

// canceledClass serves context cancellation: the client went away or the
// deadline passed outside the server's own timeout, so 503 tells a proxy
// the request may be retried elsewhere.
var canceledClass = ErrorClass{Code: "canceled", Status: http.StatusServiceUnavailable}

// Classify maps an error to its taxonomy row. Unrecognized errors
// classify as internal (HTTP 500).
func Classify(err error) ErrorClass {
	for _, c := range Taxonomy {
		if errors.Is(err, c.Err) {
			return c
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return canceledClass
	}
	return internalClass
}

// ErrorDoc is the JSON error body served for failed requests.
type ErrorDoc struct {
	Error string `json:"error"`
}

// WriteError serves err as its taxonomy class: status, optional
// Retry-After header and the {"error": ...} JSON document.
func WriteError(w http.ResponseWriter, err error) {
	c := Classify(err)
	if c.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(c.RetryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(c.Status)
	doc, _ := json.Marshal(ErrorDoc{Error: err.Error()})
	w.Write(append(doc, '\n'))
}

// RemoteError is a service error received over the wire: the server's
// message, the taxonomy sentinel it unwraps to (so errors.Is works like
// the in-process API), and the server's Retry-After hint if any.
type RemoteError struct {
	// Msg is the server's error message, verbatim.
	Msg string
	// Status is the HTTP status the error arrived as.
	Status int
	// RetryAfterSeconds is the parsed Retry-After header (0 = none).
	RetryAfterSeconds int

	sentinel error
}

// Error returns the server's message verbatim, so re-serving a
// RemoteError with WriteError reproduces the upstream error document
// byte for byte — the property the router's proxy relies on.
func (e *RemoteError) Error() string { return e.Msg }

// Unwrap exposes the taxonomy sentinel for errors.Is.
func (e *RemoteError) Unwrap() error { return e.sentinel }

// ErrorFromStatus reconstructs the typed error of a non-200 response
// from its status, Retry-After header and body. The result unwraps to
// the matching taxonomy sentinel; statuses outside the taxonomy yield a
// RemoteError wrapping nothing.
func ErrorFromStatus(status int, retryAfter string, body []byte) error {
	var doc ErrorDoc
	msg := ""
	if json.Unmarshal(body, &doc) == nil {
		msg = doc.Error
	}
	e := &RemoteError{Status: status, Msg: msg}
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		e.RetryAfterSeconds = secs
	}
	// Prefer the message prefix: wrapped sentinels put it first, and it
	// distinguishes the classes sharing a status (closed and overloaded
	// are both 503). Fall back to the status for bodies the server did
	// not produce (a proxy's own 503, say).
	for _, c := range Taxonomy {
		if strings.HasPrefix(msg, c.Err.Error()) {
			e.sentinel = c.Err
			break
		}
	}
	if e.sentinel == nil {
		for _, c := range Taxonomy {
			if c.Status == status {
				e.sentinel = c.Err
				break
			}
		}
	}
	if e.Msg == "" {
		if e.sentinel != nil {
			e.Msg = e.sentinel.Error()
		} else {
			e.Msg = fmt.Sprintf("http status %d", status)
		}
	}
	return e
}
