// Package lang implements the mini loop language in which workloads and
// examples are written: a Fortran-flavoured notation for programs made of
// counted-loop regions (iterations = segments) and explicit CFG regions.
// The parser produces ir.Program values directly; ir.Program.Format emits
// text this parser accepts, and round-trip tests keep the two in sync.
//
// Grammar (EBNF):
//
//	program  = "program" ident { decl } { proc } { region } .
//	decl     = "var" ident [ "[" int { "," int } "]" ] .
//	proc     = "proc" ident "(" [ ident { "," ident } ] ")" "{" { stmt } "}" .
//	region   = "region" ident ( loopHead | "cfg" ) "{" { ann } body "}" .
//	loopHead = "loop" ident "=" range .
//	range    = int ( "to" | "downto" ) int [ "step" int ] .
//	ann      = ( "private" | "liveout" ) ident { "," ident } .
//	body     = { stmt }            (loop region)
//	         | { segment }         (cfg region) .
//	segment  = "segment" ident "{" { stmt } "}"
//	           [ "goto" ident [ "if" expr "else" ident ] ] .
//	stmt     = lvalue "=" expr
//	         | "if" expr "{" { stmt } "}" [ "else" "{" { stmt } "}" ]
//	         | "for" ident "=" range "{" { stmt } "}"
//	         | "exit" "if" expr
//	         | "call" ident "(" [ expr { "," expr } ] ")" .
//	lvalue   = ident [ "[" expr { "," expr } "]" ] .
//
// Expressions use Go-like precedence: ||, &&, comparisons, additive,
// multiplicative, unary minus, primary.
//
// Procedures are declared before regions and may call only procedures
// already declared (plus themselves, which Validate then rejects as
// recursion — the call graph must be acyclic). Parameters are by-value
// integers in scope as index names inside the body; call arguments are
// index expressions and must not read memory.
package lang

import (
	"fmt"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokPunct // single/double character operators and delimiters
)

// token is one lexeme.
type token struct {
	kind tokKind
	text string
	val  int64
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokInt:
		return fmt.Sprintf("%d", t.val)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer scans the source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

var twoCharOps = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpace()
	t := token{line: lx.line, col: lx.col}
	if lx.pos >= len(lx.src) {
		t.kind = tokEOF
		return t, nil
	}
	c := lx.src[lx.pos]
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := lx.pos
		for lx.pos < len(lx.src) && (isIdentChar(lx.src[lx.pos])) {
			lx.advance()
		}
		t.kind = tokIdent
		t.text = lx.src[start:lx.pos]
		return t, nil
	case c >= '0' && c <= '9':
		start := lx.pos
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.advance()
		}
		t.kind = tokInt
		var v int64
		for _, d := range lx.src[start:lx.pos] {
			v = v*10 + int64(d-'0')
		}
		t.val = v
		t.text = lx.src[start:lx.pos]
		return t, nil
	default:
		if lx.pos+1 < len(lx.src) {
			two := lx.src[lx.pos : lx.pos+2]
			if twoCharOps[two] {
				lx.advance()
				lx.advance()
				t.kind = tokPunct
				t.text = two
				return t, nil
			}
		}
		switch c {
		case '=', '+', '-', '*', '/', '%', '<', '>', '(', ')', '{', '}', '[', ']', ',':
			lx.advance()
			t.kind = tokPunct
			t.text = string(c)
			return t, nil
		}
		return t, fmt.Errorf("%d:%d: unexpected character %q", lx.line, lx.col, string(c))
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (lx *lexer) advance() {
	if lx.pos < len(lx.src) {
		if lx.src[lx.pos] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.pos++
	}
}

// skipSpace consumes whitespace and '#' line comments.
func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '#' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance()
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.advance()
			continue
		}
		return
	}
}
