package lang

import (
	"testing"

	"refidem/internal/ir"
)

const procSrc = `program demo
var a[32]
var b[32]
var s
proc add(x, y) {
  a[x] = b[y] + 1
  for j = 0 to 2 {
    s = s + a[x + j]
  }
}
proc twice(x) {
  call add(x, x)
  call add(x + 1, x)
}
region r0 loop i = 0 to 7 {
  liveout a, s
  call twice(i * 2)
  b[i] = s
}
`

func TestProcRoundTrip(t *testing.T) {
	p, err := Parse(procSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Procs) != 2 {
		t.Fatalf("procs = %d, want 2", len(p.Procs))
	}
	text := p.Format()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if ir.FingerprintOf(q) != ir.FingerprintOf(p) {
		t.Fatalf("round-trip fingerprint mismatch:\n%s\nvs\n%s", text, q.Format())
	}
	// The region must see through both call levels: twice -> 2x add ->
	// (write a, read b, read s, read a, write s) each = 10 refs, plus the
	// direct read s / write b = 12.
	if got := len(p.Regions[0].Refs); got != 12 {
		t.Fatalf("expanded refs = %d, want 12", got)
	}
}

// TestProcParseErrors pins the exact error strings of every proc/call
// error path: unknown callee, arity mismatch, duplicate procedure,
// memory-reading arguments, parameter/variable collisions, and the
// recursion detection message from validation.
func TestProcParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "unknown-callee",
			src: `program p
var s
region r loop i = 0 to 3 {
  call nope(i)
}
`,
			want: `4:3: call to unknown procedure "nope"`,
		},
		{
			name: "arity-mismatch",
			src: `program p
var s
proc f(x, y) {
  s = x + y
}
region r loop i = 0 to 3 {
  call f(i)
}
`,
			want: `7:3: procedure "f" takes 2 arguments, got 1`,
		},
		{
			name: "duplicate-proc",
			src: `program p
var s
proc f(x) {
  s = x
}
proc f(y) {
  s = y
}
region r loop i = 0 to 3 {
  call f(i)
}
`,
			want: `6:6: procedure "f" redeclared`,
		},
		{
			name: "memory-arg",
			src: `program p
var s
var a[8]
proc f(x) {
  s = x
}
region r loop i = 0 to 3 {
  call f(a[i])
}
`,
			want: `8:10: argument 1 to "f" must not read memory (call arguments are index expressions)`,
		},
		{
			name: "param-shadows-var",
			src: `program p
var s
proc f(s) {
  s = 1
}
region r loop i = 0 to 3 {
  call f(i)
}
`,
			want: `3:8: parameter "s" shadows variable "s"`,
		},
		{
			name: "duplicate-param",
			src: `program p
var s
proc f(x, x) {
  s = x
}
region r loop i = 0 to 3 {
  call f(i, i)
}
`,
			want: `3:11: duplicate parameter "x"`,
		},
		{
			name: "self-recursion",
			src: `program p
var s
proc f(x) {
  s = x
  call f(x + 1)
}
region r loop i = 0 to 3 {
  call f(i)
}
`,
			want: `ir: recursive procedure call cycle: f -> f`,
		},
		{
			name: "forward-reference",
			src: `program p
var s
proc f(x) {
  call g(x)
}
proc g(x) {
  s = x
}
region r loop i = 0 to 3 {
  call f(i)
}
`,
			want: `4:3: call to unknown procedure "g"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("parse succeeded, want error %q", tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("error = %q, want %q", err.Error(), tc.want)
			}
		})
	}
}

// TestProcLoopRename: a procedure whose inner loop index collides with a
// loop live at the callsite parses, validates (no shadowing), and keeps
// both loop levels distinct in the expansion.
func TestProcLoopRename(t *testing.T) {
	src := `program p
var a[64]
proc f(x) {
  for j = 0 to 1 {
    a[x + j] = j
  }
}
region r loop i = 0 to 3 {
  liveout a
  for j = 0 to 2 {
    call f(4 * j)
  }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Regions[0]
	for _, ref := range r.Refs {
		if ref.Access != ir.Write {
			continue
		}
		if len(ref.Ctx.Loops) != 2 {
			t.Fatalf("write %v: %d enclosing loops, want 2", ref, len(ref.Ctx.Loops))
		}
		if ref.Ctx.Loops[0].Index == ref.Ctx.Loops[1].Index {
			t.Fatalf("write %v: captured index %q", ref, ref.Ctx.Loops[0].Index)
		}
	}
	// Round-trip must still hold (the rename never reaches the surface).
	q, err := Parse(p.Format())
	if err != nil {
		t.Fatal(err)
	}
	if ir.FingerprintOf(q) != ir.FingerprintOf(p) {
		t.Fatalf("round-trip fingerprint mismatch")
	}
}
