package lang

import (
	"fmt"

	"refidem/internal/ir"
)

// Parse compiles mini-language source text into a validated ir.Program.
func Parse(src string) (*ir.Program, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse for known-good embedded sources (workloads); it
// panics on error.
func MustParse(src string) *ir.Program {
	p, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("lang: %v", err))
	}
	return p
}

type parser struct {
	lx   *lexer
	tok  token
	prog *ir.Program
	// loop index scope while parsing statements.
	indices map[string]bool
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

// expect consumes a punctuation or keyword token with the given text.
func (p *parser) expect(text string) error {
	if p.tok.text != text {
		return p.errf("expected %q, found %s", text, p.tok)
	}
	return p.advance()
}

func (p *parser) ident() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errf("expected identifier, found %s", p.tok)
	}
	name := p.tok.text
	return name, p.advance()
}

// integer parses an optionally negated integer literal.
func (p *parser) integer() (int64, error) {
	neg := false
	if p.tok.text == "-" {
		neg = true
		if err := p.advance(); err != nil {
			return 0, err
		}
	}
	if p.tok.kind != tokInt {
		return 0, p.errf("expected integer, found %s", p.tok)
	}
	v := p.tok.val
	if neg {
		v = -v
	}
	return v, p.advance()
}

func (p *parser) program() (*ir.Program, error) {
	if err := p.expect("program"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	p.prog = ir.NewProgram(name)
	for p.tok.text == "var" {
		if err := p.varDecl(); err != nil {
			return nil, err
		}
	}
	for p.tok.text == "proc" {
		if err := p.procDecl(); err != nil {
			return nil, err
		}
	}
	for p.tok.text == "region" {
		if err := p.region(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s at top level", p.tok)
	}
	return p.prog, nil
}

func (p *parser) varDecl() error {
	if err := p.expect("var"); err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	var dims []int
	if p.tok.text == "[" {
		if err := p.advance(); err != nil {
			return err
		}
		for {
			d, err := p.integer()
			if err != nil {
				return err
			}
			if d <= 0 {
				return p.errf("dimension of %q must be positive", name)
			}
			dims = append(dims, int(d))
			if p.tok.text != "," {
				break
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
		if err := p.expect("]"); err != nil {
			return err
		}
	}
	if p.prog.Var(name) != nil {
		return p.errf("variable %q redeclared", name)
	}
	p.prog.AddVar(name, dims...)
	return nil
}

// procDecl parses "proc name(p1, p2) { stmts }". The procedure is
// registered before its body is parsed, so a self-call resolves (and is
// then rejected by Validate's recursion check with the cycle spelled
// out); calls to procedures declared later are unknown-procedure errors,
// which keeps mutual recursion unrepresentable at the syntax level.
func (p *parser) procDecl() error {
	if err := p.expect("proc"); err != nil {
		return err
	}
	nameTok := p.tok
	name, err := p.ident()
	if err != nil {
		return err
	}
	if p.prog.Proc(name) != nil {
		return fmt.Errorf("%d:%d: procedure %q redeclared", nameTok.line, nameTok.col, name)
	}
	if err := p.expect("("); err != nil {
		return err
	}
	var params []string
	seen := map[string]bool{}
	for p.tok.text != ")" {
		if len(params) > 0 {
			if err := p.expect(","); err != nil {
				return err
			}
		}
		prmTok := p.tok
		prm, err := p.ident()
		if err != nil {
			return err
		}
		if seen[prm] {
			return fmt.Errorf("%d:%d: duplicate parameter %q", prmTok.line, prmTok.col, prm)
		}
		if p.prog.Var(prm) != nil {
			return fmt.Errorf("%d:%d: parameter %q shadows variable %q", prmTok.line, prmTok.col, prm, prm)
		}
		seen[prm] = true
		params = append(params, prm)
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	pr := p.prog.AddProc(name, params, nil)
	p.indices = map[string]bool{}
	for _, prm := range params {
		p.indices[prm] = true
	}
	body, err := p.stmts()
	if err != nil {
		return err
	}
	if err := p.expect("}"); err != nil {
		return err
	}
	pr.Body = body
	return nil
}

// callStmt parses "call name(args)" with the callee, arity and
// load-free-argument checks done here for precise positions.
func (p *parser) callStmt() (ir.Stmt, error) {
	callTok := p.tok
	if err := p.expect("call"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	pr := p.prog.Proc(name)
	if pr == nil {
		return nil, fmt.Errorf("%d:%d: call to unknown procedure %q", callTok.line, callTok.col, name)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []ir.Expr
	for p.tok.text != ")" {
		if len(args) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		argTok := p.tok
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		if ir.HasLoad(a) {
			return nil, fmt.Errorf("%d:%d: argument %d to %q must not read memory (call arguments are index expressions)",
				argTok.line, argTok.col, len(args)+1, name)
		}
		args = append(args, a)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if len(args) != len(pr.Params) {
		return nil, fmt.Errorf("%d:%d: procedure %q takes %d arguments, got %d",
			callTok.line, callTok.col, name, len(pr.Params), len(args))
	}
	return &ir.Call{Callee: name, Args: args, Proc: pr}, nil
}

// parseRange parses "<int> to|downto <int> [step <int>]" and returns
// from, to, step.
func (p *parser) parseRange() (int, int, int, error) {
	from, err := p.integer()
	if err != nil {
		return 0, 0, 0, err
	}
	down := false
	switch p.tok.text {
	case "to":
	case "downto":
		down = true
	default:
		return 0, 0, 0, p.errf("expected 'to' or 'downto', found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return 0, 0, 0, err
	}
	to, err := p.integer()
	if err != nil {
		return 0, 0, 0, err
	}
	step := 1
	if p.tok.text == "step" {
		if err := p.advance(); err != nil {
			return 0, 0, 0, err
		}
		s, err := p.integer()
		if err != nil {
			return 0, 0, 0, err
		}
		if s <= 0 {
			return 0, 0, 0, p.errf("step must be positive (direction comes from to/downto)")
		}
		step = int(s)
	}
	if down {
		step = -step
	}
	return int(from), int(to), step, nil
}

func (p *parser) region() error {
	if err := p.expect("region"); err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	r := &ir.Region{Name: name}
	switch p.tok.text {
	case "loop":
		if err := p.advance(); err != nil {
			return err
		}
		r.Kind = ir.LoopRegion
		idx, err := p.ident()
		if err != nil {
			return err
		}
		r.Index = idx
		if err := p.expect("="); err != nil {
			return err
		}
		r.From, r.To, r.Step, err = p.parseRange()
		if err != nil {
			return err
		}
	case "cfg":
		if err := p.advance(); err != nil {
			return err
		}
		r.Kind = ir.CFGRegion
	default:
		return p.errf("expected 'loop' or 'cfg', found %s", p.tok)
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	for p.tok.text == "private" || p.tok.text == "liveout" {
		if err := p.annotation(r); err != nil {
			return err
		}
	}
	if r.Kind == ir.LoopRegion {
		p.indices = map[string]bool{r.Index: true}
		body, err := p.stmts()
		if err != nil {
			return err
		}
		r.Segments = []*ir.Segment{{ID: 0, Name: "iter", Body: body}}
	} else {
		p.indices = map[string]bool{}
		if err := p.segments(r); err != nil {
			return err
		}
	}
	if err := p.expect("}"); err != nil {
		return err
	}
	r.Finalize()
	p.prog.AddRegion(r)
	return nil
}

func (p *parser) annotation(r *ir.Region) error {
	kind := p.tok.text
	if err := p.advance(); err != nil {
		return err
	}
	for {
		name, err := p.ident()
		if err != nil {
			return err
		}
		if p.prog.Var(name) == nil {
			return p.errf("%s names unknown variable %q", kind, name)
		}
		if kind == "private" {
			if r.Ann.Private == nil {
				r.Ann.Private = map[string]bool{}
			}
			r.Ann.Private[name] = true
		} else {
			if r.Ann.LiveOut == nil {
				r.Ann.LiveOut = map[string]bool{}
			}
			r.Ann.LiveOut[name] = true
		}
		if p.tok.text != "," {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

// segments parses CFG-region segments, resolving goto targets by name
// after all segments are known.
func (p *parser) segments(r *ir.Region) error {
	type pendingGoto struct {
		seg    *ir.Segment
		then   string
		els    string
		brExpr ir.Expr
		line   int
		col    int
	}
	var pend []pendingGoto
	names := map[string]*ir.Segment{}
	id := 0
	for p.tok.text == "segment" {
		if err := p.advance(); err != nil {
			return err
		}
		name, err := p.ident()
		if err != nil {
			return err
		}
		if names[name] != nil {
			return p.errf("segment %q redeclared", name)
		}
		if err := p.expect("{"); err != nil {
			return err
		}
		body, err := p.stmts()
		if err != nil {
			return err
		}
		if err := p.expect("}"); err != nil {
			return err
		}
		seg := &ir.Segment{ID: id, Name: name, Body: body}
		id++
		names[name] = seg
		r.Segments = append(r.Segments, seg)
		if p.tok.text == "goto" {
			line, col := p.tok.line, p.tok.col
			if err := p.advance(); err != nil {
				return err
			}
			first, err := p.ident()
			if err != nil {
				return err
			}
			pg := pendingGoto{seg: seg, then: first, line: line, col: col}
			if p.tok.text == "if" {
				if err := p.advance(); err != nil {
					return err
				}
				pg.brExpr, err = p.expr()
				if err != nil {
					return err
				}
				if err := p.expect("else"); err != nil {
					return err
				}
				pg.els, err = p.ident()
				if err != nil {
					return err
				}
			}
			pend = append(pend, pg)
		}
	}
	for _, pg := range pend {
		t, ok := names[pg.then]
		if !ok {
			return fmt.Errorf("%d:%d: goto to unknown segment %q", pg.line, pg.col, pg.then)
		}
		pg.seg.Succs = []int{t.ID}
		if pg.els != "" {
			e, ok := names[pg.els]
			if !ok {
				return fmt.Errorf("%d:%d: goto to unknown segment %q", pg.line, pg.col, pg.els)
			}
			pg.seg.Succs = append(pg.seg.Succs, e.ID)
			pg.seg.Branch = pg.brExpr
		}
	}
	return nil
}

func (p *parser) stmts() ([]ir.Stmt, error) {
	var out []ir.Stmt
	for {
		switch p.tok.text {
		case "if":
			if err := p.advance(); err != nil {
				return nil, err
			}
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("{"); err != nil {
				return nil, err
			}
			then, err := p.stmts()
			if err != nil {
				return nil, err
			}
			if err := p.expect("}"); err != nil {
				return nil, err
			}
			st := &ir.If{Cond: cond, Then: then}
			if p.tok.text == "else" {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expect("{"); err != nil {
					return nil, err
				}
				st.Else, err = p.stmts()
				if err != nil {
					return nil, err
				}
				if err := p.expect("}"); err != nil {
					return nil, err
				}
			}
			out = append(out, st)
		case "for":
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.ident()
			if err != nil {
				return nil, err
			}
			if p.indices[idx] {
				return nil, p.errf("loop index %q shadows an enclosing index", idx)
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			from, to, step, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			if err := p.expect("{"); err != nil {
				return nil, err
			}
			p.indices[idx] = true
			body, err := p.stmts()
			p.indices[idx] = false
			if err != nil {
				return nil, err
			}
			if err := p.expect("}"); err != nil {
				return nil, err
			}
			out = append(out, &ir.For{Index: idx, From: from, To: to, Step: step, Body: body})
		case "exit":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect("if"); err != nil {
				return nil, err
			}
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			out = append(out, &ir.ExitRegion{Cond: cond})
		case "call":
			st, err := p.callStmt()
			if err != nil {
				return nil, err
			}
			out = append(out, st)
		default:
			if p.tok.kind != tokIdent {
				return out, nil
			}
			st, err := p.assign()
			if err != nil {
				return nil, err
			}
			out = append(out, st)
		}
	}
}

func (p *parser) assign() (ir.Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	v := p.prog.Var(name)
	if v == nil {
		return nil, p.errf("assignment to undeclared variable %q", name)
	}
	var subs []ir.Expr
	if p.tok.text == "[" {
		subs, err = p.subscripts()
		if err != nil {
			return nil, err
		}
	}
	if len(subs) != len(v.Dims) {
		return nil, p.errf("%q has %d dimensions, got %d subscripts", name, len(v.Dims), len(subs))
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ir.Assign{LHS: ir.Wr(v, subs...), RHS: rhs}, nil
}

func (p *parser) subscripts() ([]ir.Expr, error) {
	if err := p.expect("["); err != nil {
		return nil, err
	}
	var subs []ir.Expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		subs = append(subs, e)
		if p.tok.text != "," {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expect("]"); err != nil {
		return nil, err
	}
	return subs, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5, "%": 5,
}

var binOps = map[string]ir.BinOp{
	"||": ir.Or, "&&": ir.And,
	"==": ir.Eq, "!=": ir.Ne, "<": ir.Lt, "<=": ir.Le, ">": ir.Gt, ">=": ir.Ge,
	"+": ir.Add, "-": ir.Sub, "*": ir.Mul, "/": ir.Div, "%": ir.Mod,
}

func (p *parser) expr() (ir.Expr, error) {
	return p.binExpr(1)
}

func (p *parser) binExpr(minPrec int) (ir.Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPunct {
		prec, ok := binPrec[p.tok.text]
		if !ok || prec < minPrec {
			break
		}
		op := binOps[p.tok.text]
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = ir.Op(op, lhs, rhs)
	}
	return lhs, nil
}

func (p *parser) unary() (ir.Expr, error) {
	if p.tok.text == "-" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		if c, ok := e.(*ir.Const); ok {
			return ir.C(-c.Val), nil
		}
		return ir.SubE(ir.C(0), e), nil
	}
	return p.primary()
}

func (p *parser) primary() (ir.Expr, error) {
	switch {
	case p.tok.kind == tokInt:
		v := p.tok.val
		if err := p.advance(); err != nil {
			return nil, err
		}
		return ir.C(v), nil
	case p.tok.text == "(":
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.tok.kind == tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.indices[name] {
			return ir.Idx(name), nil
		}
		v := p.prog.Var(name)
		if v == nil {
			return nil, p.errf("unknown identifier %q (not a variable or loop index)", name)
		}
		var subs []ir.Expr
		if p.tok.text == "[" {
			var err error
			subs, err = p.subscripts()
			if err != nil {
				return nil, err
			}
		}
		if len(subs) != len(v.Dims) {
			return nil, p.errf("%q has %d dimensions, got %d subscripts", name, len(v.Dims), len(subs))
		}
		return ir.Rd(v, subs...), nil
	}
	return nil, p.errf("expected expression, found %s", p.tok)
}
