package lang

import (
	"strings"
	"testing"

	"refidem/internal/engine"
	"refidem/internal/gen"
	"refidem/internal/idem"
	"refidem/internal/ir"
)

const sample = `
program demo
var a[16]
var b[16]
var t
# a comment
region main loop k = 0 to 15 {
  private t
  liveout a
  t = b[k] + 1
  if t > 0 {
    a[k] = t * 2
  } else {
    a[k] = 0 - t
  }
  for j = 1 to 3 {
    a[k] = a[k] + j
  }
}
`

func TestParseSample(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" || len(p.Vars) != 3 || len(p.Regions) != 1 {
		t.Fatalf("program shape: %s %d vars %d regions", p.Name, len(p.Vars), len(p.Regions))
	}
	r := p.Regions[0]
	if r.Kind != ir.LoopRegion || r.Index != "k" || r.From != 0 || r.To != 15 || r.Step != 1 {
		t.Errorf("loop header: %+v", r)
	}
	if !r.Ann.Private["t"] || !r.Ann.LiveOut["a"] {
		t.Errorf("annotations: %+v", r.Ann)
	}
	if len(r.Refs) == 0 {
		t.Error("no references collected")
	}
}

func TestParsedProgramExecutes(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	labs := idem.LabelProgram(p)
	cfg := engine.DefaultConfig()
	seq, err := engine.RunSequential(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []engine.Mode{engine.HOSE, engine.CASE} {
		res, err := engine.RunSpeculative(p, labs, cfg, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := engine.LiveOutMismatch(p, labs, seq, res); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

func TestParseCFGRegion(t *testing.T) {
	src := `
program g
var x
var y
region r cfg {
  liveout x, y
  segment head {
    x = 1
  } goto left if x else right
  segment left {
    y = 10
  } goto tail
  segment right {
    y = 20
  } goto tail
  segment tail {
    x = y + 1
  }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Regions[0]
	if r.Kind != ir.CFGRegion || len(r.Segments) != 4 {
		t.Fatalf("region shape: %v %d", r.Kind, len(r.Segments))
	}
	head := r.Segments[0]
	if len(head.Succs) != 2 || head.Branch == nil {
		t.Errorf("head: succs=%v branch=%v", head.Succs, head.Branch)
	}
	if r.Segments[1].Succs[0] != 3 || r.Segments[2].Succs[0] != 3 {
		t.Errorf("arms should join at tail")
	}
}

func TestParseDowntoAndStep(t *testing.T) {
	src := `
program g
var a[64]
region r loop k = 30 downto 2 {
  a[k] = k
  for j = 0 to 10 step 2 {
    a[j] = j
  }
  for i = 9 downto 1 step 3 {
    a[i] = i
  }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Regions[0]
	if r.From != 30 || r.To != 2 || r.Step != -1 {
		t.Errorf("downto header: %d %d %d", r.From, r.To, r.Step)
	}
	var fors []*ir.For
	ir.WalkStmts(r.Segments[0].Body, func(s ir.Stmt) {
		if f, ok := s.(*ir.For); ok {
			fors = append(fors, f)
		}
	})
	if len(fors) != 2 || fors[0].Step != 2 || fors[1].Step != -3 {
		t.Errorf("for steps: %+v", fors)
	}
}

func TestParseExitIf(t *testing.T) {
	src := `
program g
var a[32]
region r loop k = 0 to 9 {
  a[k] = k
  exit if a[k] > 5
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Regions[0].HasEarlyExit() {
		t.Error("exit if not parsed")
	}
}

func TestExprPrecedence(t *testing.T) {
	src := `
program g
var x
var y
region r loop k = 0 to 1 {
  x = 1 + 2 * 3
  y = (1 + 2) * 3
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := p.Regions[0].Segments[0].Body
	a1 := body[0].(*ir.Assign).RHS.(*ir.Bin)
	if a1.Op != ir.Add {
		t.Errorf("1+2*3 should parse as Add at top, got %v", a1.Op)
	}
	a2 := body[1].(*ir.Assign).RHS.(*ir.Bin)
	if a2.Op != ir.Mul {
		t.Errorf("(1+2)*3 should parse as Mul at top, got %v", a2.Op)
	}
}

func TestNegativeLiterals(t *testing.T) {
	src := `
program g
var x
region r loop k = 0 to 1 {
  x = -5
  x = -x
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := p.Regions[0].Segments[0].Body
	if c, ok := body[0].(*ir.Assign).RHS.(*ir.Const); !ok || c.Val != -5 {
		t.Errorf("-5 literal: %v", body[0].(*ir.Assign).RHS)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"program", "expected identifier"},
		{"program p var x[0]", "must be positive"},
		{"program p var x var x", "redeclared"},
		{"program p region r loop k = 1 to 2 { y = 1 }", "undeclared"},
		{"program p var a[4] region r loop k = 1 to 2 { a = 1 }", "dimensions"},
		{"program p var x region r loop k = 1 to 2 { x = z }", "unknown identifier"},
		{"program p var x region r cfg { segment a { x = 1 } goto nope }", "unknown segment"},
		{"program p var x region r loop k = 1 to 2 step 0 { x = 1 }", "step must be positive"},
		{"program p var x region r loop k = 1 to 2 { for k = 1 to 2 { x = 1 } }", "shadows"},
		{"program p @", "unexpected character"},
		{"program p var x region r loop k = 2 to 1 { x = 1 }", "zero iterations"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestMustParsePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustParse("program")
}

// TestRoundTrip: Format output re-parses to a program that formats
// identically, for hand-written and generated programs alike.
func TestRoundTrip(t *testing.T) {
	srcs := []string{sample}
	gc := gen.Default()
	for seed := int64(0); seed < 60; seed++ {
		srcs = append(srcs, gen.Generate(seed, gc).Program.Format())
	}
	for i, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("case %d: first parse: %v\n%s", i, err, src)
		}
		f1 := p1.Format()
		p2, err := Parse(f1)
		if err != nil {
			t.Fatalf("case %d: reparse: %v\n%s", i, err, f1)
		}
		if f2 := p2.Format(); f1 != f2 {
			t.Errorf("case %d: round trip diverged:\n--- first\n%s\n--- second\n%s", i, f1, f2)
		}
	}
}
