package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"refidem/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from current output")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/report -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// squashTestTimelines builds a hand-crafted pair of timelines covering
// every attribution path: flow violations resolving to two distinct
// references, a flow violation with no resolvable reference, and the
// two causes that never name a reference.
func squashTestTimelines() []obs.NamedTimeline {
	refs := []obs.RefInfo{
		{Text: "write x[k-1]", Label: "idempotent", Category: "read-only"},
		{Text: "write y[k]", Label: "non-idempotent", Category: "shared-dependent"},
	}
	hose := &obs.Timeline{}
	hose.BeginRegion("r", 0, refs)
	for i := 0; i < 3; i++ {
		hose.Add(obs.Event{Kind: obs.EvSquash, Time: int64(10 + i), Ref: 1, Cause: obs.CauseFlowViolation})
	}
	hose.Add(obs.Event{Kind: obs.EvSquash, Time: 20, Ref: 0, Cause: obs.CauseFlowViolation})
	hose.Add(obs.Event{Kind: obs.EvSquash, Time: 21, Ref: -1, Cause: obs.CauseControlViolation})
	hose.Add(obs.Event{Kind: obs.EvCommit, Time: 22, Ref: -1}) // commits never count
	hose.EndRegion(30)

	caseT := &obs.Timeline{}
	caseT.BeginRegion("r", 0, refs)
	caseT.Add(obs.Event{Kind: obs.EvSquash, Time: 5, Ref: 1, Cause: obs.CauseFlowViolation})
	caseT.Add(obs.Event{Kind: obs.EvSquash, Time: 6, Ref: -1, Cause: obs.CauseEarlyExitRevoke})
	caseT.Add(obs.Event{Kind: obs.EvSquash, Time: 7, Ref: -1, Cause: obs.CauseFlowViolation})
	caseT.EndRegion(12)

	return []obs.NamedTimeline{{Name: "HOSE", T: hose}, {Name: "CASE", T: caseT}}
}

// TestSquashAttributionGolden pins the rendered table byte-for-byte:
// column set, per-timeline counts, totals-descending row order.
func TestSquashAttributionGolden(t *testing.T) {
	got := RenderSquashAttribution(squashTestTimelines())
	checkGolden(t, "squash_attribution.golden", []byte(got))
}

// TestSquashAttributionEmpty covers the no-squash and nil-timeline
// degenerate shapes.
func TestSquashAttributionEmpty(t *testing.T) {
	for _, tls := range [][]obs.NamedTimeline{
		nil,
		{{Name: "HOSE", T: nil}},
		{{Name: "HOSE", T: &obs.Timeline{}}},
	} {
		if got := RenderSquashAttribution(tls); got != "no squashes recorded\n" {
			t.Errorf("RenderSquashAttribution(%v) = %q", tls, got)
		}
	}
}

// TestSquashAttributionDeterministic renders twice and compares: the
// aggregation uses maps internally, so the sort must fully order rows.
func TestSquashAttributionDeterministic(t *testing.T) {
	a := RenderSquashAttribution(squashTestTimelines())
	b := RenderSquashAttribution(squashTestTimelines())
	if a != b {
		t.Fatalf("renders differ:\n%s\nvs\n%s", a, b)
	}
}
