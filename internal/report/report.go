// Package report renders experiment results as fixed-width text tables
// and horizontal bar charts, the form in which cmd/figures regenerates
// the paper's figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		cells = cells[:len(t.Headers)]
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered
// with %v unless it is a float64, which is rendered with two decimals.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		switch x := c.(type) {
		case float64:
			out = append(out, fmt.Sprintf("%.2f", x))
		default:
			out = append(out, fmt.Sprint(x))
		}
	}
	t.AddRow(out...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Bar renders a labeled horizontal bar of the given fractional value
// (0..max) scaled to width characters, e.g.:
//
//	TOMCATV  |##########################------| 81.2%
func Bar(label string, value, max float64, width int) string {
	if max <= 0 {
		max = 1
	}
	frac := value / max
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	fill := int(frac*float64(width) + 0.5)
	return fmt.Sprintf("%-12s |%s%s| %5.1f%%",
		label, strings.Repeat("#", fill), strings.Repeat("-", width-fill), value*100)
}

// StackedBar renders segments (label ordering preserved) as a stacked bar
// using one rune per segment type, e.g. read-only '#', private '+',
// shared-dependent '*'.
func StackedBar(label string, parts []float64, runes []rune, max float64, width int) string {
	if max <= 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s |", label)
	used := 0
	var total float64
	for i, p := range parts {
		total += p
		n := int(p / max * float64(width))
		if used+n > width {
			n = width - used
		}
		b.WriteString(strings.Repeat(string(runes[i%len(runes)]), n))
		used += n
	}
	b.WriteString(strings.Repeat("-", width-used))
	fmt.Fprintf(&b, "| %5.1f%%", total*100)
	return b.String()
}
