package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	s := tb.String()
	for _, want := range []string{"My Title", "name", "alpha", "2.50", "----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d", len(lines))
	}
}

func TestTableRowTruncation(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x", "extra")
	if len(tb.Rows[0]) != 1 {
		t.Error("extra cells should be dropped")
	}
}

func TestBar(t *testing.T) {
	s := Bar("X", 0.5, 1, 10)
	if !strings.Contains(s, "#####-----") || !strings.Contains(s, "50.0%") {
		t.Errorf("bar = %q", s)
	}
	// Clamping.
	if s := Bar("X", 2, 1, 10); !strings.Contains(s, "##########") {
		t.Errorf("overflow bar = %q", s)
	}
	if s := Bar("X", -1, 1, 10); !strings.Contains(s, "----------") {
		t.Errorf("negative bar = %q", s)
	}
}

func TestStackedBar(t *testing.T) {
	s := StackedBar("X", []float64{0.3, 0.2}, []rune{'#', '+'}, 1, 10)
	if !strings.Contains(s, "###++") {
		t.Errorf("stacked = %q", s)
	}
	if !strings.Contains(s, "50.0%") {
		t.Errorf("stacked total = %q", s)
	}
}
