package report

import (
	"fmt"
	"sort"

	"refidem/internal/obs"
)

// squashKey identifies one attribution row: the reference whose write
// caused flow-violation squashes, or a pseudo-reference for squash
// causes no single reference explains.
type squashKey struct {
	text     string
	label    string
	category string
}

// RenderSquashAttribution aggregates the squash events of the given
// timelines into a table answering "which reference is costing us
// speculation?": one row per violating reference (flow violations carry
// the writer's rendered text and its idempotency labeling), plus
// pseudo-rows for control-violation and early-exit-revoke squashes,
// which no single reference causes. One count column per timeline, a
// total column, rows sorted by descending total then reference text.
func RenderSquashAttribution(timelines []obs.NamedTimeline) string {
	counts := map[squashKey][]int64{}
	var keys []squashKey
	bump := func(k squashKey, ti int) {
		row, ok := counts[k]
		if !ok {
			row = make([]int64, len(timelines))
			counts[k] = row
			keys = append(keys, k)
		}
		row[ti]++
	}
	for ti, nt := range timelines {
		if nt.T == nil {
			continue
		}
		for ei := range nt.T.Events {
			e := &nt.T.Events[ei]
			if e.Kind != obs.EvSquash {
				continue
			}
			if info, ok := nt.T.RefInfo(e); ok && e.Cause == obs.CauseFlowViolation {
				bump(squashKey{info.Text, info.Label, info.Category}, ti)
			} else {
				bump(squashKey{"(" + e.Cause.String() + ")", "-", "-"}, ti)
			}
		}
	}
	if len(keys) == 0 {
		return "no squashes recorded\n"
	}
	total := func(k squashKey) int64 {
		var n int64
		for _, c := range counts[k] {
			n += c
		}
		return n
	}
	sort.Slice(keys, func(i, j int) bool {
		ti, tj := total(keys[i]), total(keys[j])
		if ti != tj {
			return ti > tj
		}
		return keys[i].text < keys[j].text
	})

	headers := []string{"ref", "label", "category"}
	for _, nt := range timelines {
		headers = append(headers, nt.Name)
	}
	headers = append(headers, "total")
	t := NewTable("squash attribution (squashed segments per violating reference)", headers...)
	for _, k := range keys {
		cells := []string{k.text, k.label, k.category}
		for _, c := range counts[k] {
			cells = append(cells, fmt.Sprint(c))
		}
		cells = append(cells, fmt.Sprint(total(k)))
		t.AddRow(cells...)
	}
	return t.String()
}
