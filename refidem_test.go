package refidem

import (
	"strings"
	"testing"

	"refidem/internal/workloads"
)

const quickSrc = `
program quick
var a[64]
var b[64]
var sum[40]
region main loop k = 0 to 31 {
  liveout a, sum
  a[k] = b[k] * 2 + b[k+1]
  sum[k+6] = sum[k] + a[k]
}
`

func TestParseLabelRun(t *testing.T) {
	p, err := ParseProgram(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rs.CaseSpeedup() <= 1 {
		t.Errorf("CASE speedup %.2f, want > 1", rs.CaseSpeedup())
	}
	if f := rs.IdempotentFraction(); f < 0.5 {
		t.Errorf("idempotent fraction %.2f, want > 0.5", f)
	}
	if rs.Hose == nil || rs.Seq == nil || rs.Case == nil {
		t.Error("missing results")
	}
}

func TestParseError(t *testing.T) {
	if _, err := ParseProgram("program broken region"); err == nil {
		t.Error("bad source accepted")
	}
}

func TestRunRejectsInvalidProgram(t *testing.T) {
	p, err := ParseProgram(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	p.Regions[0].Segments = nil
	if _, err := Run(p, DefaultConfig()); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestLabelFacade(t *testing.T) {
	p := workloads.Figure2()
	labs := LabelProgram(p)
	if len(labs) != 1 {
		t.Fatalf("got %d labelings", len(labs))
	}
	lab := LabelRegion(p, p.Regions[0])
	if lab == nil || len(lab.Region.Refs) == 0 {
		t.Fatal("empty labeling")
	}
	counts := map[Label]int{}
	for _, ref := range lab.Region.Refs {
		counts[lab.Label(ref)]++
	}
	if counts[Idempotent] == 0 || counts[Speculative] == 0 {
		t.Errorf("figure 2 should mix labels: %v", counts)
	}
}

func TestRunOnPaperExamples(t *testing.T) {
	for _, p := range []*Program{
		workloads.IntroExample(), workloads.Figure2(), workloads.Figure3(), workloads.ButsDO1(6),
	} {
		rs, err := Run(p, DefaultConfig())
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if rs.Case.Stats.DynRefs == 0 {
			t.Errorf("%s: nothing executed", p.Name)
		}
	}
}

func TestCategoryConstantsRoundTrip(t *testing.T) {
	names := []string{
		CatSpeculative.String(), CatFullyIndependent.String(),
		CatReadOnly.String(), CatPrivate.String(), CatSharedDependent.String(),
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"speculative", "fully-independent", "read-only", "private", "shared-dependent"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing category name %q", want)
		}
	}
}
