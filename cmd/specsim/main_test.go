package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"refidem/internal/engine"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from current output")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./cmd/specsim -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestNamedLoopsGolden locks the full three-model report for paper loops:
// the simulator is deterministic, so cycles, speedups and speculation
// statistics must reproduce bit-exactly.
func TestNamedLoopsGolden(t *testing.T) {
	for _, tc := range []struct {
		golden   string
		loop     string
		procs    int
		capacity int
	}{
		{"tomcatv_do80.golden", "TOMCATV MAIN_DO80", 4, 128},
		{"tomcatv_do80_tiny.golden", "TOMCATV MAIN_DO80", 4, 8},
		{"mgrid_do600.golden", "MGRID RESID_DO600", 8, 128},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			p, err := loadProgram(tc.loop, "")
			if err != nil {
				t.Fatal(err)
			}
			cfg := engine.DefaultConfig()
			cfg.Processors = tc.procs
			cfg.SpecCapacity = tc.capacity
			var buf bytes.Buffer
			if err := run(&buf, p, cfg, ""); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.golden, buf.Bytes())
		})
	}
}

// TestLoadProgramErrors covers the error paths main maps to exit code 1.
func TestLoadProgramErrors(t *testing.T) {
	cases := []struct {
		name       string
		loop, file string
	}{
		{"no input", "", ""},
		{"both inputs", "TOMCATV MAIN_DO80", "x.ril"},
		{"malformed loop name", "TOMCATV", ""},
		{"unknown loop", "NOPE NOPE_DO1", ""},
		{"missing file", "", filepath.Join(t.TempDir(), "missing.ril")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := loadProgram(tc.loop, tc.file); err == nil {
				t.Error("expected error")
			}
		})
	}
}

// TestRunFile drives the -file path: parse, label, simulate, verify.
func TestRunFile(t *testing.T) {
	src := `program filetest
var a[16]
var b[16]
region main loop k = 0 to 15 {
  a[k] = b[k] + 1
}
`
	path := filepath.Join(t.TempDir(), "prog.ril")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := loadProgram("", path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, p, engine.DefaultConfig(), ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("verified against the sequential memory state")) {
		t.Errorf("unexpected output:\n%s", buf.String())
	}
}

// TestTimelineExport drives -timeline end to end on a loop-carried
// dependence chain (every iteration's read flow-violates against its
// predecessor's write): the file must be a structurally valid Chrome
// trace-event JSON document with both speculative runs as named
// processes, the report must match the plain run byte-for-byte up to
// the timeline addendum (recording must not perturb the simulation),
// and the squash-attribution table is golden-gated.
func TestTimelineExport(t *testing.T) {
	src := `program chain
var x[32]
region r loop k = 1 to 31 {
  x[k] = x[k-1] + 1
}
`
	srcPath := filepath.Join(t.TempDir(), "chain.ril")
	if err := os.WriteFile(srcPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := loadProgram("", srcPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.Processors = 4
	cfg.SpecCapacity = 16

	var plain bytes.Buffer
	if err := run(&plain, p, cfg, ""); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run(&buf, p, cfg, path); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), plain.Bytes()) {
		t.Errorf("timeline run's report diverged from the plain run:\n--- plain ---\n%s\n--- timeline ---\n%s",
			plain.String(), buf.String())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("timeline file is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" || len(doc.TraceEvents) == 0 {
		t.Fatalf("timeline document is empty: %s", raw)
	}
	procs := map[string]bool{}
	phases := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "" {
			t.Fatalf("event %q lacks a phase", e.Name)
		}
		phases[e.Ph] = true
		if e.Name == "process_name" {
			procs[e.Args["name"].(string)] = true
		}
	}
	for _, want := range []string{"HOSE", "CASE"} {
		if !procs[want] {
			t.Errorf("timeline lacks a %s process track (got %v)", want, procs)
		}
	}
	for _, want := range []string{"M", "X", "i"} {
		if !phases[want] {
			t.Errorf("timeline lacks %q-phase events", want)
		}
	}

	i := bytes.Index(buf.Bytes(), []byte("squash attribution"))
	if i < 0 {
		t.Fatalf("report lacks the squash-attribution table:\n%s", buf.String())
	}
	checkGolden(t, "chain_squash.golden", buf.Bytes()[i:])

	// Byte-determinism of the export itself.
	path2 := filepath.Join(t.TempDir(), "trace2.json")
	var buf2 bytes.Buffer
	if err := run(&buf2, p, cfg, path2); err != nil {
		t.Fatal(err)
	}
	raw2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("timeline export is not byte-deterministic across identical runs")
	}
}

// TestTimelineBadPath maps an unwritable -timeline file to an error.
func TestTimelineBadPath(t *testing.T) {
	p, err := loadProgram("TOMCATV MAIN_DO80", "")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bad := filepath.Join(t.TempDir(), "missing-dir", "trace.json")
	if err := run(&buf, p, engine.DefaultConfig(), bad); err == nil {
		t.Fatal("expected error for unwritable timeline path")
	}
}
