package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"refidem/internal/engine"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from current output")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./cmd/specsim -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestNamedLoopsGolden locks the full three-model report for paper loops:
// the simulator is deterministic, so cycles, speedups and speculation
// statistics must reproduce bit-exactly.
func TestNamedLoopsGolden(t *testing.T) {
	for _, tc := range []struct {
		golden   string
		loop     string
		procs    int
		capacity int
	}{
		{"tomcatv_do80.golden", "TOMCATV MAIN_DO80", 4, 128},
		{"tomcatv_do80_tiny.golden", "TOMCATV MAIN_DO80", 4, 8},
		{"mgrid_do600.golden", "MGRID RESID_DO600", 8, 128},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			p, err := loadProgram(tc.loop, "")
			if err != nil {
				t.Fatal(err)
			}
			cfg := engine.DefaultConfig()
			cfg.Processors = tc.procs
			cfg.SpecCapacity = tc.capacity
			var buf bytes.Buffer
			if err := run(&buf, p, cfg); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.golden, buf.Bytes())
		})
	}
}

// TestLoadProgramErrors covers the error paths main maps to exit code 1.
func TestLoadProgramErrors(t *testing.T) {
	cases := []struct {
		name       string
		loop, file string
	}{
		{"no input", "", ""},
		{"both inputs", "TOMCATV MAIN_DO80", "x.ril"},
		{"malformed loop name", "TOMCATV", ""},
		{"unknown loop", "NOPE NOPE_DO1", ""},
		{"missing file", "", filepath.Join(t.TempDir(), "missing.ril")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := loadProgram(tc.loop, tc.file); err == nil {
				t.Error("expected error")
			}
		})
	}
}

// TestRunFile drives the -file path: parse, label, simulate, verify.
func TestRunFile(t *testing.T) {
	src := `program filetest
var a[16]
var b[16]
region main loop k = 0 to 15 {
  a[k] = b[k] + 1
}
`
	path := filepath.Join(t.TempDir(), "prog.ril")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := loadProgram("", path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, p, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("verified against the sequential memory state")) {
		t.Errorf("unexpected output:\n%s", buf.String())
	}
}
