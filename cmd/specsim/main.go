// Command specsim executes a program on the simulated chip multiprocessor
// under the sequential, HOSE and CASE models and reports cycles, speedups
// and speculation statistics — the architecture half of the paper as a
// standalone tool.
//
// Usage:
//
//	specsim -loop "TOMCATV MAIN_DO80"       # a named loop from the paper
//	specsim -file prog.ril                  # a mini-language source file
//	specsim -procs 8 -capacity 64           # machine parameters
//	specsim -timeline trace.json            # speculation timeline export
//
// With -timeline, the HOSE and CASE runs record their speculation
// events (segment spawns, commits, squashes with causes, overflow
// stalls, trace-JIT activity) and the file receives a Chrome
// trace-event JSON document — load it in Perfetto or chrome://tracing
// to see the machine's speculation behaviour cycle by cycle. The report
// gains a squash-attribution table naming the references that caused
// the flow-violation squashes. Recording does not perturb the
// simulation: cycles and statistics are identical with and without it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"refidem/internal/engine"
	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/lang"
	"refidem/internal/obs"
	"refidem/internal/report"
	"refidem/internal/workloads"
)

func main() {
	loop := flag.String("loop", "", `named loop, e.g. "TOMCATV MAIN_DO80" (see -list)`)
	file := flag.String("file", "", "mini-language source file")
	list := flag.Bool("list", false, "list the named loops and exit")
	procs := flag.Int("procs", 4, "processor count")
	capacity := flag.Int("capacity", 128, "speculative storage capacity (entries per segment)")
	trace := flag.Bool("trace", false, "stream the engine event trace to stderr")
	timeline := flag.String("timeline", "", "write a Chrome trace-event JSON speculation timeline to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *list {
		for _, s := range workloads.NamedLoops() {
			fmt.Printf("  %-24s (figure %d)\n", s.String(), s.Fig)
		}
		return
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "specsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "specsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "specsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "specsim:", err)
			}
		}()
	}
	p, err := loadProgram(*loop, *file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specsim:", err)
		os.Exit(1)
	}
	cfg := engine.DefaultConfig()
	cfg.Processors = *procs
	cfg.SpecCapacity = *capacity
	if *trace {
		cfg.Trace = os.Stderr
	}

	if err := run(os.Stdout, p, cfg, *timeline); err != nil {
		fmt.Fprintln(os.Stderr, "specsim:", err)
		os.Exit(1)
	}
}

func loadProgram(loop, file string) (*ir.Program, error) {
	switch {
	case loop != "" && file != "":
		return nil, fmt.Errorf("use either -loop or -file, not both")
	case loop != "":
		parts := strings.Fields(loop)
		if len(parts) != 2 {
			return nil, fmt.Errorf("loop name must be \"BENCH LOOP\", got %q", loop)
		}
		spec, ok := workloads.FindLoop(parts[0], parts[1])
		if !ok {
			return nil, fmt.Errorf("unknown loop %q (use -list)", loop)
		}
		return spec.Program(), nil
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return lang.Parse(string(src))
	default:
		return nil, fmt.Errorf("nothing to do: pass -loop or -file (-h for help)")
	}
}

// run executes and reports one program on one machine configuration; the
// CLI tests drive it directly. A non-empty timelinePath attaches a
// speculation timeline to each speculative run and exports both as one
// Chrome trace-event JSON document.
func run(w io.Writer, p *ir.Program, cfg engine.Config, timelinePath string) error {
	if err := p.Validate(); err != nil {
		return err
	}
	labs := idem.LabelProgram(p)
	seq, err := engine.RunSequential(p, cfg)
	if err != nil {
		return err
	}
	hoseCfg, caseCfg := cfg, cfg
	var timelines []obs.NamedTimeline
	if timelinePath != "" {
		hoseCfg.Timeline = &obs.Timeline{}
		caseCfg.Timeline = &obs.Timeline{}
		timelines = []obs.NamedTimeline{
			{Name: "HOSE", T: hoseCfg.Timeline},
			{Name: "CASE", T: caseCfg.Timeline},
		}
	}
	hose, err := engine.RunSpeculative(p, labs, hoseCfg, engine.HOSE)
	if err != nil {
		return err
	}
	caseR, err := engine.RunSpeculative(p, labs, caseCfg, engine.CASE)
	if err != nil {
		return err
	}
	for _, r := range []*engine.Result{hose, caseR} {
		if err := engine.LiveOutMismatch(p, labs, seq, r); err != nil {
			return fmt.Errorf("%v run produced wrong results: %w", r.Mode, err)
		}
	}

	fmt.Fprintf(w, "program %s on %d processors, %d-entry speculative storage\n\n",
		p.Name, cfg.Processors, cfg.SpecCapacity)
	t := report.NewTable("", "model", "cycles", "speedup", "dyn refs", "idem refs",
		"overflows", "stall cyc", "flow viol", "ctrl viol", "peak spec", "util%")
	rows := []*engine.Result{seq, hose, caseR}
	for _, r := range rows {
		s := r.Stats
		util := "-"
		if r.Mode != engine.Sequential && r.Cycles > 0 {
			util = fmt.Sprintf("%.0f", 100*float64(s.BusyCycles)/float64(int64(cfg.Processors)*r.Cycles))
		}
		t.AddRowf(r.Mode, r.Cycles, float64(seq.Cycles)/float64(r.Cycles),
			s.DynRefs, s.IdemRefs, s.Overflows, s.OverflowStallCycles,
			s.FlowViolations, s.ControlViolations, s.PeakSpecOccupancy, util)
	}
	fmt.Fprintln(w, t.String())
	fmt.Fprintln(w, "both speculative runs verified against the sequential memory state")
	if timelinePath != "" {
		f, err := os.Create(timelinePath)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, timelines); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nspeculation timeline written to %s\n\n", timelinePath)
		fmt.Fprint(w, report.RenderSquashAttribution(timelines))
	}
	return nil
}
