package main

import (
	"bytes"
	"context"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"refidem/internal/service"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from current output")

// checkGolden compares got against the named golden file, rewriting it
// under -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./cmd/refidemd -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func newTestServer(t *testing.T) (*service.Server, *httptest.Server) {
	t.Helper()
	srv := service.New(service.DefaultConfig())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestEndpointsGolden locks the response documents of every JSON
// endpoint — the same byte-determinism guarantee the smoke job checks
// against a live daemon.
func TestEndpointsGolden(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		golden string
		path   string
		body   string
	}{
		{"label_fig2.golden", "/v1/label", `{"example": "fig2", "deps": true}`},
		{"label_fig3.golden", "/v1/label", `{"example": "fig3"}`},
		// A call-containing program through the full service path: the
		// labeling must see through the procedure boundary (the region's
		// references all come from call expansion).
		{"label_calls.golden", "/v1/label",
			`{"program": "program svc_calls\nvar a[32]\nvar b[32]\nvar s\nproc bump(x) {\n  a[2 * x] = b[x] + 1\n  s = s + b[x]\n}\nregion r loop i = 0 to 7 {\n  liveout a, s\n  call bump(i)\n}\n"}`},
		{"simulate_fig2.golden", "/v1/simulate", `{"example": "fig2", "procs": 8, "capacity": 64}`},
		{"batch_mixed.golden", "/v1/batch", `{"requests": [
			{"op": "label", "example": "fig1"},
			{"op": "simulate", "example": "fig1"},
			{"op": "label", "example": "nope"}
		]}`},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			status, body := post(t, ts.URL+tc.path, tc.body)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			checkGolden(t, tc.golden, body)
		})
	}
}

// TestResponsesByteIdenticalOverHTTP re-requests the same document and
// compares bytes, end to end through the HTTP layer.
func TestResponsesByteIdenticalOverHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"program": "program http_det\nvar a[8]\nregion r loop i = 0 to 7 {\n  a[i] = a[i] + 1\n}\n"}`
	_, first := post(t, ts.URL+"/v1/label", body)
	for i := 0; i < 3; i++ {
		_, again := post(t, ts.URL+"/v1/label", body)
		if !bytes.Equal(first, again) {
			t.Fatal("response bytes differ across identical requests")
		}
	}
}

func TestErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{"bad json", "/v1/label", `{"example":`, http.StatusBadRequest},
		{"unknown field", "/v1/label", `{"exmaple": "fig2"}`, http.StatusBadRequest},
		{"unknown example", "/v1/label", `{"example": "fig9"}`, http.StatusBadRequest},
		{"parse error", "/v1/label", `{"program": "program x\nregion {"}`, http.StatusBadRequest},
		{"empty batch", "/v1/batch", `{"requests": []}`, http.StatusBadRequest},
		{"no input", "/v1/simulate", `{}`, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, ts.URL+tc.path, tc.body)
			if status != tc.status {
				t.Errorf("status = %d, want %d (%s)", status, tc.status, body)
			}
			if !bytes.Contains(body, []byte("error")) {
				t.Errorf("error document missing: %s", body)
			}
		})
	}
	// Method and route checks.
	resp, err := http.Get(ts.URL + "/v1/label")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/label = %d, want 405", resp.StatusCode)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, b)
	}

	if status, _ := post(t, ts.URL+"/v1/label", `{"example": "fig2"}`); status != http.StatusOK {
		t.Fatal("label failed")
	}
	resp, err = http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"requests_label 1", "cache_misses 1", "latency_count 1"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metricz missing %q:\n%s", want, b)
		}
	}
}

// TestDaemonLifecycle boots the real daemon on an ephemeral port, labels
// through it, then cancels the context and verifies the graceful drain
// path runs to completion.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr lockedBuffer
	done := make(chan error, 1)
	go func() {
		done <- runUntil(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, &stdout, &stderr)
	}()

	// The daemon prints its ephemeral address once the listener is up.
	var url string
	deadline := time.Now().Add(10 * time.Second)
	re := regexp.MustCompile(`listening on (http://[^\s]+)`)
	for url == "" {
		if m := re.FindStringSubmatch(stdout.String()); m != nil {
			url = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	status, body := post(t, url+"/v1/label", `{"example": "fig2"}`)
	if status != http.StatusOK {
		t.Fatalf("label via daemon = %d: %s", status, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
	if !strings.Contains(stderr.String(), "drained, bye") {
		t.Errorf("graceful drain message missing; stderr: %s", stderr.String())
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runUntil(context.Background(), []string{"-nope"}, &out, &out); err == nil {
		t.Error("expected flag error")
	}
}

// lockedBuffer is a concurrency-safe bytes.Buffer: the daemon goroutine
// writes while the test polls.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
