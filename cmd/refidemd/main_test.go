package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"refidem/internal/service"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from current output")

// checkGolden compares got against the named golden file, rewriting it
// under -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./cmd/refidemd -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func newTestServer(t *testing.T) (*service.Server, *httptest.Server) {
	t.Helper()
	srv := service.New(service.DefaultConfig())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestEndpointsGolden locks the response documents of every JSON
// endpoint — the same byte-determinism guarantee the smoke job checks
// against a live daemon.
func TestEndpointsGolden(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		golden string
		path   string
		body   string
	}{
		{"label_fig2.golden", "/v1/label", `{"example": "fig2", "deps": true}`},
		{"label_fig3.golden", "/v1/label", `{"example": "fig3"}`},
		// A call-containing program through the full service path: the
		// labeling must see through the procedure boundary (the region's
		// references all come from call expansion).
		{"label_calls.golden", "/v1/label",
			`{"program": "program svc_calls\nvar a[32]\nvar b[32]\nvar s\nproc bump(x) {\n  a[2 * x] = b[x] + 1\n  s = s + b[x]\n}\nregion r loop i = 0 to 7 {\n  liveout a, s\n  call bump(i)\n}\n"}`},
		{"simulate_fig2.golden", "/v1/simulate", `{"example": "fig2", "procs": 8, "capacity": 64}`},
		{"batch_mixed.golden", "/v1/batch", `{"requests": [
			{"op": "label", "example": "fig1"},
			{"op": "simulate", "example": "fig1"},
			{"op": "label", "example": "nope"}
		]}`},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			status, body := post(t, ts.URL+tc.path, tc.body)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			checkGolden(t, tc.golden, body)
		})
	}
}

// TestResponsesByteIdenticalOverHTTP re-requests the same document and
// compares bytes, end to end through the HTTP layer.
func TestResponsesByteIdenticalOverHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"program": "program http_det\nvar a[8]\nregion r loop i = 0 to 7 {\n  a[i] = a[i] + 1\n}\n"}`
	_, first := post(t, ts.URL+"/v1/label", body)
	for i := 0; i < 3; i++ {
		_, again := post(t, ts.URL+"/v1/label", body)
		if !bytes.Equal(first, again) {
			t.Fatal("response bytes differ across identical requests")
		}
	}
}

func TestErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{"bad json", "/v1/label", `{"example":`, http.StatusBadRequest},
		{"unknown field", "/v1/label", `{"exmaple": "fig2"}`, http.StatusBadRequest},
		{"unknown example", "/v1/label", `{"example": "fig9"}`, http.StatusBadRequest},
		{"parse error", "/v1/label", `{"program": "program x\nregion {"}`, http.StatusBadRequest},
		{"empty batch", "/v1/batch", `{"requests": []}`, http.StatusBadRequest},
		{"no input", "/v1/simulate", `{}`, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, ts.URL+tc.path, tc.body)
			if status != tc.status {
				t.Errorf("status = %d, want %d (%s)", status, tc.status, body)
			}
			if !bytes.Contains(body, []byte("error")) {
				t.Errorf("error document missing: %s", body)
			}
		})
	}
	// Method and route checks.
	resp, err := http.Get(ts.URL + "/v1/label")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/label = %d, want 405", resp.StatusCode)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d %q", resp.StatusCode, b)
	}
	var health service.Health
	if err := json.Unmarshal(b, &health); err != nil {
		t.Fatalf("healthz body is not JSON: %v\n%s", err, b)
	}
	if health.Status != "ok" || health.Store != "disabled" {
		t.Fatalf("healthz = %+v, want status ok / store disabled (no -store flag)", health)
	}

	if status, _ := post(t, ts.URL+"/v1/label", `{"example": "fig2"}`); status != http.StatusOK {
		t.Fatal("label failed")
	}
	resp, err = http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"requests_label 1", "cache_misses 1", "latency_count 1"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metricz missing %q:\n%s", want, b)
		}
	}
}

// bootDaemon starts the real daemon on an ephemeral port and returns its
// base URL, the cancel triggering graceful shutdown, the exit channel and
// the stderr buffer.
func bootDaemon(t *testing.T, extraArgs ...string) (string, context.CancelFunc, chan error, *lockedBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout, stderr := &lockedBuffer{}, &lockedBuffer{}
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, extraArgs...)
	go func() {
		done <- runUntil(ctx, args, stdout, stderr)
	}()

	// The daemon prints its ephemeral address once the listener is up.
	deadline := time.Now().Add(10 * time.Second)
	re := regexp.MustCompile(`listening on (http://[^\s]+)`)
	for {
		if m := re.FindStringSubmatch(stdout.String()); m != nil {
			return m[1], cancel, done, stderr
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stopDaemon cancels the daemon and waits for the graceful drain.
func stopDaemon(t *testing.T, cancel context.CancelFunc, done chan error, stderr *lockedBuffer) {
	t.Helper()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
}

// TestDaemonLifecycle boots the real daemon on an ephemeral port, labels
// through it, then cancels the context and verifies the graceful drain
// path runs to completion.
func TestDaemonLifecycle(t *testing.T) {
	url, cancel, done, stderr := bootDaemon(t)

	status, body := post(t, url+"/v1/label", `{"example": "fig2"}`)
	if status != http.StatusOK {
		t.Fatalf("label via daemon = %d: %s", status, body)
	}

	stopDaemon(t, cancel, done, stderr)
	if !strings.Contains(stderr.String(), "drained, bye") {
		t.Errorf("graceful drain message missing; stderr: %s", stderr.String())
	}
}

// TestDaemonWarmRestart is the end-to-end durability check the crash smoke
// script runs against a SIGKILLed process: populate a -store daemon, shut
// it down, boot a fresh one on the same directory, and require the same
// responses byte-identically from warm-start hits with zero recomputes.
func TestDaemonWarmRestart(t *testing.T) {
	dir := t.TempDir()
	reqs := []string{
		`{"example": "fig2", "deps": true}`,
		`{"example": "fig3"}`,
	}

	url, cancel, done, stderr := bootDaemon(t, "-store", dir)
	if !strings.Contains(stderr.String(), "store "+dir) {
		t.Errorf("recovery scan not announced; stderr: %s", stderr.String())
	}
	cold := make([][]byte, len(reqs))
	for i, body := range reqs {
		var status int
		if status, cold[i] = post(t, url+"/v1/label", body); status != http.StatusOK {
			t.Fatalf("populate request %d = %d: %s", i, status, cold[i])
		}
	}
	stopDaemon(t, cancel, done, stderr)

	url, cancel, done, stderr = bootDaemon(t, "-store", dir)
	for i, body := range reqs {
		status, warm := post(t, url+"/v1/label", body)
		if status != http.StatusOK {
			t.Fatalf("warm request %d = %d: %s", i, status, warm)
		}
		if !bytes.Equal(warm, cold[i]) {
			t.Fatalf("request %d: warm-restart response differs from the cold bytes", i)
		}
	}
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health service.Health
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Store != "ok" || health.StoreWarmHits != int64(len(reqs)) {
		t.Fatalf("warm health = %+v, want store ok with %d warm hits", health, len(reqs))
	}
	resp, err = http.Get(url + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	metricz, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metricz), "tasks_computed 0\n") {
		t.Error("warm restart recomputed a persisted fingerprint")
	}
	stopDaemon(t, cancel, done, stderr)
}

// TestDaemonRequestTimeout exercises the -request-timeout flag end to end:
// an absurdly small deadline trips on a real compute and answers 504.
func TestDaemonRequestTimeout(t *testing.T) {
	url, cancel, done, stderr := bootDaemon(t, "-request-timeout", "1ns")
	status, body := post(t, url+"/v1/label", `{"example": "fig2"}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", status, body)
	}
	stopDaemon(t, cancel, done, stderr)
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runUntil(context.Background(), []string{"-nope"}, &out, &out); err == nil {
		t.Error("expected flag error")
	}
}

// lockedBuffer is a concurrency-safe bytes.Buffer: the daemon goroutine
// writes while the test polls.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
