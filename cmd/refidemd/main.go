// Command refidemd serves the reference idempotency analysis over HTTP:
// a long-running daemon wrapping internal/service, so the labeling
// pipeline and the simulator's compiled-region caches are shared across
// requests instead of being rebuilt per CLI invocation.
//
// Endpoints (JSON request/response documents; see internal/service):
//
//	POST /v1/label     {"program": "..."} or {"example": "fig2"}
//	POST /v1/simulate  ... plus optional "procs", "capacity"
//	POST /v1/simulate?timeline=1  speculation timeline (Chrome trace JSON)
//	POST /v1/batch     {"requests": [...]} (up to 256 items)
//	GET  /healthz      liveness + store health (JSON)
//	GET  /metricz      counters, cache/store stats, latency histogram
//	GET  /debug/tracez flight-recorder request spans (text; ?format=json)
//
// Usage:
//
//	refidemd -addr 127.0.0.1:8347
//	refidemd -addr 127.0.0.1:0 -shards 16 -workers 8   # ephemeral port
//	refidemd -store /var/lib/refidem                   # persistent results
//	refidemd -log-level info                           # request logging
//	refidemd -debug-addr 127.0.0.1:0                   # pprof sidecar
//
// With -store, the daemon opens a crash-safe result store in the given
// directory: it warm-starts from surviving records at boot (announcing the
// recovery scan's findings), persists computed responses write-behind, and
// degrades to memory-only serving if the store faults at runtime.
//
// Observability: the flight recorder keeps the last -flight request spans
// (served on /debug/tracez; each response carries X-Refidem-Trace-Id).
// -log-level enables structured request logging (log/slog, one line per
// request; off by default). -debug-addr starts a second listener serving
// net/http/pprof — the profiling surface never shares the serving mux.
//
// The daemon prints "listening on http://HOST:PORT" once ready (scripted
// callers parse it to discover an ephemeral port), shuts down gracefully
// on SIGINT/SIGTERM — in-flight and queued requests drain before exit —
// and rejects work beyond the admission queue with 503 + Retry-After.
// Requests exceeding -request-timeout answer 504.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"refidem/internal/service"
	"refidem/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "refidemd:", err)
		os.Exit(1)
	}
}

// run is the whole daemon behind exit codes; tests drive it directly
// with a pre-cancelled or signal-wired context via runUntil.
func run(args []string, stdout, stderr io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runUntil(ctx, args, stdout, stderr)
}

// parseLevel maps the -log-level flag to a slog level; empty and "off"
// disable request logging entirely.
func parseLevel(s string) (slog.Level, bool, error) {
	switch strings.ToLower(s) {
	case "", "off":
		return 0, false, nil
	case "debug":
		return slog.LevelDebug, true, nil
	case "info":
		return slog.LevelInfo, true, nil
	case "warn":
		return slog.LevelWarn, true, nil
	case "error":
		return slog.LevelError, true, nil
	}
	return 0, false, fmt.Errorf("unknown -log-level %q (want off, debug, info, warn or error)", s)
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// logRequests wraps the API handler with one structured log line per
// request: method, path, status, latency and the flight-recorder trace
// ID when one was assigned. Failed (4xx/5xx) requests log at warn so an
// -log-level warn daemon stays quiet in steady state.
func logRequests(h http.Handler, log *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //detlint:allow time-now (request log timing never reaches response bytes)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		lvl := slog.LevelInfo
		if sw.status >= 400 {
			lvl = slog.LevelWarn
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"latency_us", time.Since(start).Microseconds(), //detlint:allow time-now (request log timing never reaches response bytes)
		}
		if tid := sw.Header().Get("X-Refidem-Trace-Id"); tid != "" {
			attrs = append(attrs, "trace_id", tid)
		}
		log.Log(r.Context(), lvl, "request", attrs...)
	})
}

// runUntil serves until ctx is cancelled, then drains and returns.
func runUntil(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("refidemd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8347", "listen address (port 0 picks an ephemeral port)")
		shards    = fs.Int("shards", 8, "program cache shard count")
		cacheCap  = fs.Int("cache", 64, "labeled programs per cache shard")
		respCache = fs.Int("resp-cache", 0, "response byte cache entries per shard (0 = 4x -cache, negative disables)")
		workers   = fs.Int("workers", 0, "compute worker pool size (0 = all cores)")
		queue     = fs.Int("queue", 1024, "admission queue depth (full queue answers 503)")
		batch     = fs.Int("batch", 64, "max tasks per dispatch batch")
		coalesce  = fs.Bool("coalesce", true, "deduplicate identical in-flight requests")
		storeDir  = fs.String("store", "", "persistent result store directory (empty = memory-only)")
		storeQ    = fs.Int("store-queue", 256, "write-behind persistence queue depth")
		reqTO     = fs.Duration("request-timeout", 5*time.Second, "per-request deadline (answers 504; 0 disables)")
		traced    = fs.Bool("traced", false, "run simulate engines with the trace JIT (hot loops execute as guarded superblocks; results identical, cycle counts differ)")
		ensemble  = fs.Bool("ensemble", false, "label through the collaborative dependence ensemble (responses identical, /metricz gains per-member counters)")
		flight    = fs.Int("flight", 256, "flight-recorder span ring capacity for /debug/tracez (0 disables request tracing)")
		logLevel  = fs.String("log-level", "off", "structured request logging level: off, debug, info, warn or error")
		debugAddr = fs.String("debug-addr", "", "separate listen address for net/http/pprof (empty disables; never served on -addr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, logOn, err := parseLevel(*logLevel)
	if err != nil {
		return err
	}

	cfg := service.DefaultConfig()
	cfg.Shards = *shards
	cfg.CacheCapacity = *cacheCap
	cfg.ResponseCache = *respCache
	cfg.Workers = *workers
	cfg.QueueDepth = *queue
	cfg.MaxBatch = *batch
	cfg.Coalesce = *coalesce
	cfg.StoreQueueDepth = *storeQ
	cfg.RequestTimeout = *reqTO
	cfg.Engine.Traced = *traced
	cfg.Ensemble = *ensemble
	cfg.FlightSpans = *flight
	var backend *store.FS
	if *storeDir != "" {
		var stats store.RecoveryStats
		var err error
		backend, stats, err = store.Open(*storeDir)
		if err != nil {
			return fmt.Errorf("opening store %s: %w", *storeDir, err)
		}
		fmt.Fprintf(stderr, "refidemd: store %s: %s\n", *storeDir, stats)
		cfg.Store = backend
	}
	srv := service.New(cfg)

	closeAll := func() {
		srv.Close() // flushes write-behind persistence before the backend closes
		if backend != nil {
			backend.Close()
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		closeAll()
		return err
	}
	handler := srv.Handler()
	if logOn {
		handler = logRequests(handler, slog.New(slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: level})))
	}
	httpSrv := &http.Server{Handler: handler}

	// The pprof sidecar: its own listener and mux, so the profiling
	// surface is reachable only where -debug-addr points (a loopback or
	// ops-only interface), never through the serving port.
	var debugSrv *http.Server
	var debugLn net.Listener
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			closeAll()
			return fmt.Errorf("debug listener: %w", err)
		}
		debugLn = dln
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Handler: dmux}
		go debugSrv.Serve(dln)
		defer debugSrv.Close()
	}
	// The main address announces first: scripted callers parse the first
	// "listening on" line for the serving port.
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())
	if debugLn != nil {
		fmt.Fprintf(stdout, "debug listening on http://%s\n", debugLn.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		closeAll()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stderr, "refidemd: shutting down: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	// Stop accepting connections and wait for in-flight HTTP requests,
	// then drain the service queue (requests already admitted complete).
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(stderr, "refidemd: forced shutdown:", err)
	}
	closeAll()
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stderr, "refidemd: drained, bye")
	return nil
}
