package main

import (
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	for _, s := range []string{"", "off", "OFF"} {
		if _, on, err := parseLevel(s); err != nil || on {
			t.Errorf("parseLevel(%q) = on=%v err=%v, want disabled", s, on, err)
		}
	}
	for _, s := range []string{"debug", "info", "warn", "error", "INFO"} {
		if _, on, err := parseLevel(s); err != nil || !on {
			t.Errorf("parseLevel(%q) = on=%v err=%v, want enabled", s, on, err)
		}
	}
	if _, _, err := parseLevel("verbose"); err == nil {
		t.Error("parseLevel(verbose) should fail")
	}
}

// bootDaemonOut is bootDaemon plus the stdout buffer, for tests that
// parse more than the first announce line (the debug listener address).
func bootDaemonOut(t *testing.T, extraArgs ...string) (string, *lockedBuffer, context.CancelFunc, chan error, *lockedBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout, stderr := &lockedBuffer{}, &lockedBuffer{}
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, extraArgs...)
	go func() {
		done <- runUntil(ctx, args, stdout, stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	re := regexp.MustCompile(`(?m)^listening on (http://\S+)$`)
	for {
		if m := re.FindStringSubmatch(stdout.String()); m != nil {
			return m[1], stdout, cancel, done, stderr
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonDebugListener boots with -debug-addr and scrapes a heap
// profile from the sidecar, then verifies the serving mux answers 404
// for the same path — the profiling surface must never leak onto -addr.
func TestDaemonDebugListener(t *testing.T) {
	url, stdout, cancel, done, stderr := bootDaemonOut(t, "-debug-addr", "127.0.0.1:0")
	defer stopDaemon(t, cancel, done, stderr)

	re := regexp.MustCompile(`debug listening on (http://\S+)`)
	var debugURL string
	deadline := time.Now().Add(5 * time.Second)
	for debugURL == "" {
		if m := re.FindStringSubmatch(stdout.String()); m != nil {
			debugURL = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("debug listener never announced; stdout: %s", stdout.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(debugURL + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("heap profile scrape = %d (%d bytes), want 200 with content", resp.StatusCode, len(body))
	}

	resp, err = http.Get(url + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("serving mux answered /debug/pprof/heap with %d, want 404", resp.StatusCode)
	}
}

// TestDaemonTracez checks the default-on flight recorder end to end: the
// response trace header and the span on /debug/tracez, and that -flight 0
// turns both off.
func TestDaemonTracez(t *testing.T) {
	url, cancel, done, stderr := bootDaemon(t)
	resp, err := http.Post(url+"/v1/label", "application/json",
		strings.NewReader(`{"example": "fig2"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Refidem-Trace-Id") == "" {
		t.Fatal("default daemon sent no X-Refidem-Trace-Id (flight recorder should default on)")
	}
	tz, err := http.Get(url + "/debug/tracez")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(tz.Body)
	tz.Body.Close()
	if !strings.Contains(string(body), "label") || !strings.Contains(string(body), "ok") {
		t.Fatalf("tracez lacks the label span:\n%s", body)
	}
	stopDaemon(t, cancel, done, stderr)

	url, cancel, done, stderr = bootDaemon(t, "-flight", "0")
	resp, err = http.Post(url+"/v1/label", "application/json",
		strings.NewReader(`{"example": "fig2"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if h := resp.Header.Get("X-Refidem-Trace-Id"); h != "" {
		t.Fatalf("-flight 0 daemon still sent trace header %q", h)
	}
	stopDaemon(t, cancel, done, stderr)
}

// TestDaemonRequestLogging checks -log-level: one structured line per
// request with method, path, status and the trace ID; failures log at
// warn.
func TestDaemonRequestLogging(t *testing.T) {
	url, cancel, done, stderr := bootDaemon(t, "-log-level", "info")
	defer stopDaemon(t, cancel, done, stderr)

	for _, body := range []string{`{"example": "fig2"}`, `{"example": "nope"}`} {
		resp, err := http.Post(url+"/v1/label", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		log := stderr.String()
		if strings.Contains(log, "status=200") && strings.Contains(log, "status=400") {
			if !strings.Contains(log, "path=/v1/label") || !strings.Contains(log, "method=POST") {
				t.Fatalf("request log lacks method/path attributes:\n%s", log)
			}
			if !strings.Contains(log, "trace_id=") {
				t.Fatalf("request log lacks trace_id:\n%s", log)
			}
			if !strings.Contains(log, "level=WARN") {
				t.Fatalf("400 should log at warn:\n%s", log)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("request log lines never appeared:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonLogLevelOff pins the default: no request lines on stderr.
func TestDaemonLogLevelOff(t *testing.T) {
	url, cancel, done, stderr := bootDaemon(t)
	resp, err := http.Post(url+"/v1/label", "application/json",
		strings.NewReader(`{"example": "fig2"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if strings.Contains(stderr.String(), "msg=request") {
		t.Fatalf("default daemon logged requests:\n%s", stderr.String())
	}
	stopDaemon(t, cancel, done, stderr)
}

func TestDaemonBadLogLevel(t *testing.T) {
	if err := runUntil(context.Background(), []string{"-log-level", "loud"}, io.Discard, io.Discard); err == nil {
		t.Fatal("expected -log-level validation error")
	}
}
