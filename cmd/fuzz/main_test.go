package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from current output")

// checkGolden compares got against the named golden file, rewriting it
// under -update-golden (the cmd/figures / cmd/idemlabel pattern).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./cmd/fuzz -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestSweepGolden locks the deterministic summary of a small clean sweep:
// same seed/n/profile must print identical bytes forever (and
// independently of the shard count, which both invocations vary).
func TestSweepGolden(t *testing.T) {
	var a, b bytes.Buffer
	if code := run([]string{"-seed", "1", "-n", "20", "-shards", "1"}, &a, os.Stderr); code != 0 {
		t.Fatalf("exit %d:\n%s", code, a.String())
	}
	if code := run([]string{"-seed", "1", "-n", "20", "-shards", "4"}, &b, os.Stderr); code != 0 {
		t.Fatalf("exit %d:\n%s", code, b.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("summary depends on shard count:\n%s\nvs\n%s", a.String(), b.String())
	}
	checkGolden(t, "sweep.golden", a.Bytes())
}

// TestCallsProfileSweepGolden pins a sweep over one of the call-heavy
// profiles, proving calls rotate through the wall.
func TestCallsProfileSweepGolden(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-seed", "5", "-n", "12", "-profile", "calls-nested"}, &buf, os.Stderr); code != 0 {
		t.Fatalf("exit %d:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "calls=12") {
		t.Fatalf("call-heavy profile generated call-free programs:\n%s", buf.String())
	}
	checkGolden(t, "sweep_calls.golden", buf.Bytes())
}

// TestBreakLabelingSelfTest drives the wall's fault-injection mode: the
// deliberately corrupted labeling must be caught (exit 1) and shrunk to a
// tiny reproducer.
func TestBreakLabelingSelfTest(t *testing.T) {
	var buf bytes.Buffer
	code := run([]string{"-seed", "1", "-n", "10", "-break-labeling", "-shrink-limit", "1"}, &buf, os.Stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (wall must catch the injected fault):\n%s", code, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "kind=theorem") && !strings.Contains(out, "kind=lemma") {
		t.Fatalf("no oracle failure reported:\n%s", out)
	}
	if !strings.Contains(out, "(failures are expected under -break-labeling)") {
		t.Fatalf("missing self-test footer:\n%s", out)
	}
}

// TestListProfiles locks the profile registry listing (new profiles must
// update this golden deliberately).
func TestListProfiles(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-list-profiles"}, &buf, os.Stderr); code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "profiles.golden", buf.Bytes())
}

// TestReplayCorpus re-runs the checked-in reproducer corpus through the
// -replay-corpus path (the CI corpus-replay job's exact entry point).
func TestReplayCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "proptest", "testdata", "corpus")
	var buf bytes.Buffer
	if code := run([]string{"-replay-corpus", dir}, &buf, os.Stderr); code != 0 {
		t.Fatalf("exit %d:\n%s", code, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "seed-proc-calls.prog") || !strings.Contains(out, "0 failures") {
		t.Fatalf("unexpected replay output:\n%s", out)
	}
}

// TestFlagAndDriverErrors covers the exit-2 paths: unparseable flags, a
// bad profile name, a missing corpus directory, and a cancelled sweep.
func TestFlagAndDriverErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad-flag", []string{"-definitely-not-a-flag"}},
		{"bad-profile", []string{"-profile", "nope", "-n", "5"}},
		{"bad-n", []string{"-n", "0"}},
		{"missing-corpus", []string{"-replay-corpus", filepath.Join(t.TempDir(), "empty")}},
		{"timeout", []string{"-n", "100000", "-timeout", "1ns"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 2 {
				t.Fatalf("exit %d, want 2 (stdout %q, stderr %q)", code, out.String(), errb.String())
			}
		})
	}
}
