// Command fuzz is the batched, sharded differential-fuzzing driver: it
// generates seeded scenario programs (internal/gen), pushes each through
// the oracle wall (internal/fuzz) — validation, printer round-trip,
// theorem conformance, sequential/HOSE/CASE final-memory equivalence
// under the default and buffer-pressure machines, and the CASE occupancy
// bound — then shrinks any failure to a minimal reproducer and writes it
// to the seed corpus with its generator seed for byte-exact replay.
//
// The summary on stdout is deterministic: two runs with the same -seed,
// -n and -profile print identical bytes, regardless of -shards.
//
// Usage:
//
//	fuzz -seed 1 -n 100                   # quick sweep, all profiles
//	fuzz -shards 8 -n 2000                # the nightly configuration
//	fuzz -profile calls-nested -n 500     # pin one scenario profile
//	fuzz -corpus testdata/corpus -n 1000  # write minimized reproducers
//	fuzz -break-labeling -n 50            # prove the wall catches label faults
//	fuzz -break-ensemble -n 50            # prove the wall catches bad speculation
//	fuzz -replay-corpus dir               # re-run checked-in reproducers
//	fuzz -list-profiles
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"refidem/internal/fuzz"
	"refidem/internal/gen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole driver behind argument parsing and exit codes; the
// golden CLI tests drive it directly. Exit codes: 0 clean sweep, 1 oracle
// failures found, 2 driver error (bad flags, cancelled sweep, unreadable
// corpus).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "base seed; program i uses seed+i")
	n := fs.Int("n", 500, "number of programs to generate and check")
	shards := fs.Int("shards", 0, "parallel shards (0 = all cores); does not affect output")
	profile := fs.String("profile", "all", "scenario profile to pin, or 'all' to rotate")
	corpus := fs.String("corpus", "", "directory to write minimized reproducers to")
	breakLab := fs.Bool("break-labeling", false,
		"deliberately corrupt the labeling (force one speculative write idempotent): the wall must catch it")
	breakEns := fs.Bool("break-ensemble", false,
		"deliberately corrupt the dependence ensemble (annotate a real dependence 'never aliases'): the wall must catch it")
	shrinkLimit := fs.Int("shrink-limit", 20, "max failures to shrink (in index order)")
	timeout := fs.Duration("timeout", 0, "abort the sweep after this long (0 = no limit); a timed-out sweep exits 2")
	replay := fs.String("replay-corpus", "",
		"re-run every *.prog reproducer in the directory through the full oracle wall, then exit")
	list := fs.Bool("list-profiles", false, "list scenario profiles and exit")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *list {
		for _, p := range gen.Profiles() {
			fmt.Fprintf(stdout, "%-14s %s\n", p.Name, p.Desc)
		}
		return 0
	}
	if *replay != "" {
		return replayCorpus(*replay, stdout, stderr)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sum, err := fuzz.RunCtx(ctx, fuzz.Options{
		Seed:          *seed,
		N:             *n,
		Shards:        *shards,
		Profile:       *profile,
		BreakLabeling: *breakLab,
		BreakEnsemble: *breakEns,
		CorpusDir:     *corpus,
		ShrinkLimit:   *shrinkLimit,
	})
	if err != nil {
		fmt.Fprintln(stderr, "fuzz:", err)
		return 2
	}
	fmt.Fprint(stdout, sum.Format())
	if len(sum.Failures) > 0 {
		if *breakLab {
			fmt.Fprintln(stdout, "(failures are expected under -break-labeling)")
		}
		if *breakEns {
			fmt.Fprintln(stdout, "(failures are expected under -break-ensemble)")
		}
		return 1
	}
	return 0
}

// replayCorpus re-runs every checked-in reproducer through the oracle
// wall: corpus entries are minimized failures of bugs since fixed (plus
// hand-written seed programs), so each must pass. Exit 1 when any entry
// fails again, 2 when the corpus cannot be read.
func replayCorpus(dir string, stdout, stderr io.Writer) int {
	entries, err := fuzz.LoadCorpus(dir)
	if err != nil {
		fmt.Fprintln(stderr, "fuzz:", err)
		return 2
	}
	if len(entries) == 0 {
		fmt.Fprintln(stderr, "fuzz: no *.prog reproducers under", dir)
		return 2
	}
	bad := 0
	for _, r := range entries {
		p, err := r.Program()
		status := "ok"
		if err != nil {
			status = fmt.Sprintf("parse: %v", err)
			bad++
		} else if v := fuzz.CheckProgram(p, fuzz.OracleOptions{}); v != nil {
			status = v.String()
			bad++
		}
		fmt.Fprintf(stdout, "%-44s %s\n", filepath.Base(r.Path), status)
	}
	fmt.Fprintf(stdout, "replayed %d reproducers, %d failures\n", len(entries), bad)
	if bad > 0 {
		return 1
	}
	return 0
}
