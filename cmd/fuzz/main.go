// Command fuzz is the batched, sharded differential-fuzzing driver: it
// generates seeded scenario programs (internal/gen), pushes each through
// the oracle wall (internal/fuzz) — validation, printer round-trip,
// theorem conformance, sequential/HOSE/CASE final-memory equivalence
// under the default and buffer-pressure machines, and the CASE occupancy
// bound — then shrinks any failure to a minimal reproducer and writes it
// to the seed corpus with its generator seed for byte-exact replay.
//
// The summary on stdout is deterministic: two runs with the same -seed,
// -n and -profile print identical bytes, regardless of -shards.
//
// Usage:
//
//	fuzz -seed 1 -n 100                   # quick sweep, all profiles
//	fuzz -shards 8 -n 2000                # the nightly configuration
//	fuzz -profile pressure -n 500         # pin one scenario profile
//	fuzz -corpus testdata/corpus -n 1000  # write minimized reproducers
//	fuzz -break-labeling -n 50            # prove the wall catches faults
//	fuzz -list-profiles
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"refidem/internal/fuzz"
	"refidem/internal/gen"
)

func main() {
	seed := flag.Int64("seed", 1, "base seed; program i uses seed+i")
	n := flag.Int("n", 500, "number of programs to generate and check")
	shards := flag.Int("shards", 0, "parallel shards (0 = all cores); does not affect output")
	profile := flag.String("profile", "all", "scenario profile to pin, or 'all' to rotate")
	corpus := flag.String("corpus", "", "directory to write minimized reproducers to")
	breakLab := flag.Bool("break-labeling", false,
		"deliberately corrupt the labeling (force one speculative write idempotent): the wall must catch it")
	shrinkLimit := flag.Int("shrink-limit", 20, "max failures to shrink (in index order)")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit); a timed-out sweep exits 2")
	list := flag.Bool("list-profiles", false, "list scenario profiles and exit")
	flag.Parse()

	if *list {
		for _, p := range gen.Profiles() {
			fmt.Printf("%-12s %s\n", p.Name, p.Desc)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sum, err := fuzz.RunCtx(ctx, fuzz.Options{
		Seed:          *seed,
		N:             *n,
		Shards:        *shards,
		Profile:       *profile,
		BreakLabeling: *breakLab,
		CorpusDir:     *corpus,
		ShrinkLimit:   *shrinkLimit,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuzz:", err)
		os.Exit(2)
	}
	fmt.Print(sum.Format())
	if len(sum.Failures) > 0 {
		if *breakLab {
			fmt.Println("(failures are expected under -break-labeling)")
		}
		os.Exit(1)
	}
}
