package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"refidem/internal/service"
)

// lockedBuffer is an io.Writer safe for the daemon goroutine + test reads.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// bootReplicas starts n in-process service instances behind httptest
// servers and returns their base URLs.
func bootReplicas(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		cfg := service.DefaultConfig()
		cfg.Workers, cfg.Shards = 2, 2
		srv := service.New(cfg)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		urls[i] = ts.URL
	}
	return urls
}

// bootRouter starts the real router on an ephemeral port and returns its
// base URL, the cancel triggering graceful shutdown and the exit channel.
func bootRouter(t *testing.T, args ...string) (string, context.CancelFunc, chan error, *lockedBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout, stderr := &lockedBuffer{}, &lockedBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- runUntil(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), stdout, stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	re := regexp.MustCompile(`listening on (http://[^\s]+)`)
	for {
		if m := re.FindStringSubmatch(stdout.String()); m != nil {
			return m[1], cancel, done, stderr
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("router never announced its address; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestRouterLifecycle boots the real router over live replicas, requires
// a routed label byte-identical to a replica-direct one, then cancels and
// verifies the graceful drain.
func TestRouterLifecycle(t *testing.T) {
	urls := bootReplicas(t, 3)
	router, cancel, done, stderr := bootRouter(t, "-replicas", strings.Join(urls, ","), "-probe-interval", "-1ms")

	status, viaRouter := post(t, router+"/v1/label", `{"example": "fig2", "deps": true}`)
	if status != http.StatusOK {
		t.Fatalf("label via router = %d: %s", status, viaRouter)
	}
	status, direct := post(t, urls[0]+"/v1/label", `{"example": "fig2", "deps": true}`)
	if status != http.StatusOK {
		t.Fatalf("label via replica = %d: %s", status, direct)
	}
	if !bytes.Equal(viaRouter, direct) {
		t.Fatalf("routed response differs from replica-direct response:\n%s\nvs\n%s", viaRouter, direct)
	}

	if status, body := post(t, router+"/v1/label", `{}`); status != http.StatusBadRequest {
		t.Fatalf("empty request via router = %d: %s", status, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("router exited with error: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("router did not shut down")
	}
	if !strings.Contains(stderr.String(), "shutting down") {
		t.Errorf("graceful shutdown message missing; stderr: %s", stderr.String())
	}
}

func TestRouterBadFlags(t *testing.T) {
	var out lockedBuffer
	if err := runUntil(context.Background(), []string{"-nope"}, &out, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := runUntil(context.Background(), nil, &out, &out); err == nil || !strings.Contains(err.Error(), "-replicas") {
		t.Fatalf("missing -replicas not rejected: %v", err)
	}
}
