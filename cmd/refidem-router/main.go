// Command refidem-router fronts N refidemd replicas with a
// consistent-hash router (internal/cluster): requests are routed by
// program fingerprint — a program and every delta against it land on the
// same replica, so delta requests find their base registered — with
// bounded-load balancing, health-probe ejection and deterministic
// failover along the ring's successor order. Because replica responses
// are byte-deterministic, clients cannot tell which replica answered, or
// that a failover happened at all.
//
// Endpoints (the /v1 surface of a replica, plus the router's own):
//
//	POST /v1/label                label via the owning replica
//	POST /v1/simulate             simulate via the owning replica
//	POST /v1/simulate?timeline=1  speculation timeline, proxied
//	POST /v1/batch                items route independently, answered in order
//	GET  /healthz                 router + per-replica liveness (JSON)
//	GET  /metricz                 routing, failover and probe counters
//
// Usage:
//
//	refidem-router -replicas http://127.0.0.1:8347,http://127.0.0.1:8348
//	refidem-router -addr 127.0.0.1:0 -replicas ...     # ephemeral port
//	refidem-router -probe-interval 250ms -fail-after 2 # faster ejection
//
// The router prints "listening on http://HOST:PORT" once ready (scripted
// callers parse it to discover an ephemeral port) and shuts down on
// SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"refidem/internal/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "refidem-router:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runUntil(ctx, args, stdout, stderr)
}

// runUntil serves until ctx is cancelled; tests drive it directly.
func runUntil(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("refidem-router", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8346", "listen address (port 0 picks an ephemeral port)")
		replicas = fs.String("replicas", "", "comma-separated replica base URLs (required)")
		vnodes   = fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the hash ring")
		load     = fs.Float64("load-factor", 1.25, "bounded-load factor (in-flight per replica vs fair share)")
		probe    = fs.Duration("probe-interval", 500*time.Millisecond, "health probe period (negative disables probing)")
		probeTO  = fs.Duration("probe-timeout", time.Second, "single health probe deadline")
		failN    = fs.Int("fail-after", 2, "consecutive probe failures that eject a replica")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replicas == "" {
		return fmt.Errorf("-replicas is required (comma-separated base URLs)")
	}
	var reps []cluster.Replica
	for _, u := range strings.Split(*replicas, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		// The URL is the stable identity: every router instance given the
		// same -replicas list places every key identically.
		reps = append(reps, cluster.Replica{Name: strings.TrimPrefix(strings.TrimPrefix(u, "http://"), "https://"), URL: u})
	}
	rt, err := cluster.New(cluster.Config{
		Replicas:      reps,
		VNodes:        *vnodes,
		LoadFactor:    *load,
		ProbeInterval: *probe,
		ProbeTimeout:  *probeTO,
		FailAfter:     *failN,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())
	fmt.Fprintf(stderr, "refidem-router: %d replicas on the ring\n", len(reps))

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stderr, "refidem-router: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(stderr, "refidem-router: forced shutdown:", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
