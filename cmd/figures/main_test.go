package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from current output")

// checkGolden compares got against the named golden file, rewriting it
// under -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./cmd/figures -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestFiguresGolden locks the rendered output of every figure selector,
// so experiment or renderer changes cannot silently alter the tool.
func TestFiguresGolden(t *testing.T) {
	for _, tc := range []struct {
		golden string
		fig    string
	}{
		{"fig5.golden", "5"},
		{"fig6.golden", "6"},
		{"fig9.golden", "9"},
		{"ablation.golden", "ablation"},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, tc.fig, 0, false); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.golden, buf.Bytes())
		})
	}
}

// TestJSONMatchesCheckedInGolden asserts -json reproduces the repo's
// golden figures document byte for byte — the same gate CI enforces.
func TestJSONMatchesCheckedInGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "all", 0, true); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "scripts", "golden_figures.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("-json output differs from scripts/golden_figures.json")
	}
}

// TestRunStable asserts repeated runs render identically (worker-count
// independence included: 1 worker vs all cores).
func TestRunStable(t *testing.T) {
	var first bytes.Buffer
	if err := run(&first, "5", 1, false); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 0} {
		var again bytes.Buffer
		if err := run(&again, "5", workers, false); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("output differs with workers=%d", workers)
		}
	}
}

// TestRunErrors covers the error exit paths.
func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "12", 0, false); err == nil {
		t.Error("expected error for unknown figure")
	}
	if err := run(&buf, "nope", 0, false); err == nil {
		t.Error("expected error for unknown selector")
	}
}
