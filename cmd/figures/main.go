// Command figures regenerates the paper's evaluation figures (Figure 5
// through Figure 9) and the ablation studies on the simulated machine.
//
// Usage:
//
//	figures             # everything
//	figures -fig 5      # one figure
//	figures -fig ablation
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"refidem/internal/engine"
	"refidem/internal/experiments"
	"refidem/internal/ir"
	"refidem/internal/workloads"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, 9, ablation, all")
	workers := flag.Int("workers", 0, "parallel simulator runs (0 = all cores)")
	jsonOut := flag.Bool("json", false, "emit every experiment as one JSON document")
	flag.Parse()

	if err := run(os.Stdout, *fig, *workers, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// run is the whole tool behind flag parsing and exit codes; the CLI tests
// drive it directly.
func run(w io.Writer, fig string, workers int, jsonOut bool) error {
	cfg := engine.DefaultConfig()
	if jsonOut {
		return experiments.WriteJSON(w, cfg, workers)
	}
	switch fig {
	case "5":
		return fig5(w, cfg, workers)
	case "6", "7", "8", "9":
		return figLoops(w, int(fig[0]-'0'), cfg, workers)
	case "ablation":
		return ablations(w, cfg, workers)
	case "all":
		for _, f := range []func() error{
			func() error { return fig5(w, cfg, workers) },
			func() error { return figLoops(w, 6, cfg, workers) },
			func() error { return figLoops(w, 7, cfg, workers) },
			func() error { return figLoops(w, 8, cfg, workers) },
			func() error { return figLoops(w, 9, cfg, workers) },
			func() error { return ablations(w, cfg, workers) },
		} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

func fig5(w io.Writer, cfg engine.Config, workers int) error {
	rows, err := experiments.Figure5(cfg, workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, experiments.RenderFigure5(rows))
	return nil
}

func figLoops(w io.Writer, fig int, cfg engine.Config, workers int) error {
	results, err := experiments.FigureLoops(fig, cfg, workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, experiments.RenderFigureLoops(fig, results))
	fmt.Fprintln(w)
	return nil
}

func ablations(w io.Writer, cfg engine.Config, workers int) error {
	tom, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	caps := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	pts, err := experiments.AblationCapacity(tom, caps, cfg, workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, experiments.RenderCapacity(tom.String(), pts))
	fmt.Fprintln(w)

	rows, err := experiments.AblationCategories(tom, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, experiments.RenderCategories(tom.String(), rows))
	fmt.Fprintln(w)

	resid, _ := workloads.FindLoop("MGRID", "RESID_DO600")
	pp, err := experiments.AblationProcessors(resid, []int{1, 2, 4, 8, 16}, cfg, workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, experiments.RenderProcessors(resid.String(), pp))
	fmt.Fprintln(w)

	fmt.Fprintln(w, experiments.RenderDirections(
		experiments.AblationDepDirection(experiments.DefaultDirectionPrograms())))
	fmt.Fprintln(w)

	gp, err := experiments.AblationGranularity(
		experiments.NamedProgram{Name: resid.String(), Make: func() *ir.Program { return resid.Program() }},
		[]int{1, 2, 3, 5, 6}, cfg, workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, experiments.RenderGranularity(resid.String(), gp))
	fmt.Fprintln(w)

	ap, err := experiments.AblationAssociativity(tom, cfg, workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, experiments.RenderAssociativity(tom.String(), ap))
	fmt.Fprintln(w)

	er, err := experiments.AblationEnsemble(experiments.DefaultEnsemblePrograms(), engine.PressureConfig())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, experiments.RenderEnsemble(er))
	return nil
}
