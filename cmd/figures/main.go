// Command figures regenerates the paper's evaluation figures (Figure 5
// through Figure 9) and the ablation studies on the simulated machine.
//
// Usage:
//
//	figures             # everything
//	figures -fig 5      # one figure
//	figures -fig ablation
package main

import (
	"flag"
	"fmt"
	"os"

	"refidem/internal/engine"
	"refidem/internal/experiments"
	"refidem/internal/ir"
	"refidem/internal/workloads"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, 9, ablation, all")
	workers := flag.Int("workers", 0, "parallel simulator runs (0 = all cores)")
	jsonOut := flag.Bool("json", false, "emit every experiment as one JSON document")
	flag.Parse()

	cfg := engine.DefaultConfig()
	if *jsonOut {
		if err := experiments.WriteJSON(os.Stdout, cfg, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		return
	}
	var err error
	switch *fig {
	case "5":
		err = fig5(cfg, *workers)
	case "6", "7", "8", "9":
		err = figLoops(int((*fig)[0]-'0'), cfg, *workers)
	case "ablation":
		err = ablations(cfg, *workers)
	case "all":
		for _, f := range []func() error{
			func() error { return fig5(cfg, *workers) },
			func() error { return figLoops(6, cfg, *workers) },
			func() error { return figLoops(7, cfg, *workers) },
			func() error { return figLoops(8, cfg, *workers) },
			func() error { return figLoops(9, cfg, *workers) },
			func() error { return ablations(cfg, *workers) },
		} {
			if err = f(); err != nil {
				break
			}
		}
	default:
		err = fmt.Errorf("unknown figure %q", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func fig5(cfg engine.Config, workers int) error {
	rows, err := experiments.Figure5(cfg, workers)
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderFigure5(rows))
	return nil
}

func figLoops(fig int, cfg engine.Config, workers int) error {
	results, err := experiments.FigureLoops(fig, cfg, workers)
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderFigureLoops(fig, results))
	fmt.Println()
	return nil
}

func ablations(cfg engine.Config, workers int) error {
	tom, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	caps := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	pts, err := experiments.AblationCapacity(tom, caps, cfg, workers)
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderCapacity(tom.String(), pts))
	fmt.Println()

	rows, err := experiments.AblationCategories(tom, cfg)
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderCategories(tom.String(), rows))
	fmt.Println()

	resid, _ := workloads.FindLoop("MGRID", "RESID_DO600")
	pp, err := experiments.AblationProcessors(resid, []int{1, 2, 4, 8, 16}, cfg, workers)
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderProcessors(resid.String(), pp))
	fmt.Println()

	fmt.Println(experiments.RenderDirections(
		experiments.AblationDepDirection(experiments.DefaultDirectionPrograms())))
	fmt.Println()

	gp, err := experiments.AblationGranularity(
		experiments.NamedProgram{Name: resid.String(), Make: func() *ir.Program { return resid.Program() }},
		[]int{1, 2, 3, 5, 6}, cfg, workers)
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderGranularity(resid.String(), gp))
	fmt.Println()

	ap, err := experiments.AblationAssociativity(tom, cfg, workers)
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderAssociativity(tom.String(), ap))
	return nil
}
