// Command benchjson converts `go test -bench` output (read from stdin)
// into a JSON document mapping benchmark name to ns/op, allocs/op,
// bytes/op and every custom metric reported via b.ReportMetric. An
// optional -baseline file (same JSON shape) is embedded verbatim so a
// results file can carry the reference numbers it is compared against.
//
// It is also the benchmark-regression gate: with -gate BASELINE.json the
// freshly parsed numbers are compared against the baseline file's
// benchmarks and the process exits non-zero if any gated benchmark's
// ns/op regressed beyond -gate-max-regress or its allocs/op grew at all.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | benchjson -o BENCH_results.json
//	go test -run '^$' -bench 'BenchmarkEngine' -benchmem . | benchjson -gate BENCH_results.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"refidem/internal/benchfmt"
)

// Result and Document are the shared BENCH_results.json shapes (see
// internal/benchfmt; cmd/loadbench merges its rows into the same
// document).
type (
	Result   = benchfmt.Result
	Document = benchfmt.Document
)

func parse(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := fields[0]
	// Strip the -N GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	r := Result{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			r.Metrics[unit] = val
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return name, r, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "JSON file with reference numbers to embed under \"baseline\"")
	goVersion := flag.String("go", "", "toolchain version string to record")
	gate := flag.String("gate", "", "baseline JSON file to gate against (exit 1 on regression)")
	gatePrefix := flag.String("gate-prefix", "BenchmarkEngine,BenchmarkAnalysisPipeline,BenchmarkSequentialBaseline,BenchmarkServiceLabel,BenchmarkServiceSimulateThroughput",
		"comma-separated name prefixes selecting the gated benchmarks")
	gateMaxRegress := flag.Float64("gate-max-regress", 0.25, "maximum allowed ns/op regression (fraction over baseline)")
	gateAllocSlack := flag.Float64("gate-alloc-slack", 0.25,
		"allocs/op growth allowed (fraction) for benchmarks matching -gate-alloc-slack-prefix; others must stay flat")
	gateAllocSlackPrefix := flag.String("gate-alloc-slack-prefix",
		"BenchmarkServiceLabelThroughput,BenchmarkServiceSimulateThroughput",
		"comma-separated name prefixes whose allocs/op gate uses -gate-alloc-slack instead of exact flatness (concurrency benchmarks only: per-op allocations vary with scheduling; serial benchmarks like BenchmarkServiceLabelSerial stay exact)")
	gateNsSlack := flag.Float64("gate-ns-slack", 1.0,
		"ns/op regression allowed (fraction) for benchmarks matching -gate-ns-slack-prefix instead of -gate-max-regress")
	gateNsSlackPrefix := flag.String("gate-ns-slack-prefix", "BenchmarkStore",
		"comma-separated name prefixes whose ns/op gate uses -gate-ns-slack (fs-bound benchmarks: fsync latency varies run to run far beyond CPU noise; their allocs/op gate still applies)")
	flag.Parse()

	doc := Document{Go: *goVersion, Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if name, r, ok := parse(sc.Text()); ok {
			doc.Benchmarks[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base Document
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad baseline:", err)
			os.Exit(1)
		}
		doc.Baseline = base.Benchmarks
	}
	if *gate != "" {
		if err := runGate(doc.Benchmarks, *gate, *gatePrefix, *gateMaxRegress,
			*gateAllocSlack, *gateAllocSlackPrefix, *gateNsSlack, *gateNsSlackPrefix); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if *out == "" {
			return
		}
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runGate compares the measured benchmarks against the baseline file:
// for every benchmark whose name starts with one of the comma-separated
// prefixes and exists in both sets, ns/op may regress by at most
// maxRegress (fractionally) and allocs/op may not grow at all — except
// for benchmarks matching allocSlackPrefix, whose allocs/op may grow by
// allocSlack (fractionally): the service throughput benchmarks run
// concurrent submitters, so their per-op allocation counts depend on
// scheduling (how many requests coalesce) and are not exactly
// reproducible. Benchmarks matching nsSlackPrefix use nsSlack as their
// ns/op threshold instead of maxRegress: the store benchmarks are bound
// by fsync latency, which varies run to run far beyond CPU noise (their
// allocs/op gate still holds — allocation counts don't depend on disk
// speed). Any violation is an error; so is a gated baseline benchmark
// that was not measured.
func runGate(got map[string]Result, baselineFile, prefix string, maxRegress,
	allocSlack float64, allocSlackPrefix string, nsSlack float64, nsSlackPrefix string) error {
	raw, err := os.ReadFile(baselineFile)
	if err != nil {
		return err
	}
	var base Document
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bad baseline %s: %w", baselineFile, err)
	}
	splitPrefixes := func(s string) []string {
		var out []string
		for _, p := range strings.Split(s, ",") {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	matchesAny := func(name string, prefixes []string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	prefixes := splitPrefixes(prefix)
	slackPrefixes := splitPrefixes(allocSlackPrefix)
	nsSlackPrefixes := splitPrefixes(nsSlackPrefix)
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if matchesAny(name, prefixes) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("baseline %s has no benchmarks with prefixes %q", baselineFile, prefix)
	}
	var violations []string
	for _, name := range names {
		b := base.Benchmarks[name]
		g, ok := got[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: in baseline but not measured", name))
			continue
		}
		if b.NsPerOp <= 0 {
			violations = append(violations, fmt.Sprintf("%s: baseline ns/op is %v — unusable baseline", name, b.NsPerOp))
			continue
		}
		ratio := g.NsPerOp/b.NsPerOp - 1
		status := "ok"
		nsLimit := maxRegress
		if matchesAny(name, nsSlackPrefixes) {
			nsLimit = nsSlack
		}
		if ratio > nsLimit {
			status = "REGRESSED"
			violations = append(violations, fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (%+.1f%% > %+.1f%%)",
				name, g.NsPerOp, b.NsPerOp, 100*ratio, 100*nsLimit))
		}
		allocLimit := b.AllocsPerOp
		if matchesAny(name, slackPrefixes) {
			allocLimit = b.AllocsPerOp * (1 + allocSlack)
		}
		if g.AllocsPerOp > allocLimit {
			status = "REGRESSED"
			violations = append(violations, fmt.Sprintf("%s: allocs/op grew %.0f -> %.0f (limit %.0f)",
				name, b.AllocsPerOp, g.AllocsPerOp, allocLimit))
		}
		fmt.Printf("gate %-48s ns/op %12.0f (baseline %12.0f, %+6.1f%%)  allocs/op %6.0f (baseline %6.0f)  %s\n",
			name, g.NsPerOp, b.NsPerOp, 100*ratio, g.AllocsPerOp, b.AllocsPerOp, status)
	}
	if len(violations) > 0 {
		return fmt.Errorf("benchmark gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	fmt.Printf("gate passed: %d benchmarks within +%.0f%% ns/op and their allocs/op limits\n",
		len(names), 100*maxRegress)
	return nil
}
