// Command benchjson converts `go test -bench` output (read from stdin)
// into a JSON document mapping benchmark name to ns/op, allocs/op,
// bytes/op and every custom metric reported via b.ReportMetric. An
// optional -baseline file (same JSON shape) is embedded verbatim so a
// results file can carry the reference numbers it is compared against.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | benchjson -o BENCH_results.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result holds one benchmark's parsed measurements.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted JSON shape.
type Document struct {
	Go         string            `json:"go,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
	Baseline   map[string]Result `json:"baseline,omitempty"`
}

func parse(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := fields[0]
	// Strip the -N GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	r := Result{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			r.Metrics[unit] = val
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return name, r, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "JSON file with reference numbers to embed under \"baseline\"")
	goVersion := flag.String("go", "", "toolchain version string to record")
	flag.Parse()

	doc := Document{Go: *goVersion, Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if name, r, ok := parse(sc.Text()); ok {
			doc.Benchmarks[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base Document
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad baseline:", err)
			os.Exit(1)
		}
		doc.Baseline = base.Benchmarks
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
