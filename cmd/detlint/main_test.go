package main

import (
	"fmt"
	"testing"
)

// TestFixtureFindings runs the linter over the fixture tree and pins the
// exact finding set: every deliberate violation is caught, every
// allowlisted or suppressed or out-of-scope construct is not.
func TestFixtureFindings(t *testing.T) {
	findings, err := Lint("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(findings))
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", f.Pos.Filename, f.Pos.Line, f.Rule)] = true
	}
	want := []string{
		"cmd/figures/main.go:15:range-map", // named map type via package var
		"cmd/figures/main.go:18:range-map", // map composite literal (parenthesized)
		"cmd/figures/main.go:21:time-now",  // renamed time import
		"internal/obs/obs.go:11:range-map", // map-typed field in the trace-export package
		"internal/other/other.go:5:math-rand",
		"internal/service/bad.go:13:range-map", // make(map) assignment
		"internal/service/bad.go:16:range-map", // map-typed struct field
		"internal/service/bad.go:20:range-map", // package-local map-returning func
		"internal/service/bad.go:23:time-now",
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing expected finding %s\ngot: %v", w, findings)
		}
	}
	if len(findings) != len(want) {
		t.Errorf("got %d findings, want %d:\n%v", len(findings), len(want), findings)
	}
}

// TestRepositoryClean is the wall itself: the repo this tool ships in
// must lint clean.
func TestRepositoryClean(t *testing.T) {
	findings, err := Lint("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repository violates the determinism lint: %s", f)
	}
}

// TestAllowlistScoping checks the two allowlist shapes: a single-file
// entry covers exactly that file, and a directory entry covers the
// whole subtree.
func TestAllowlistScoping(t *testing.T) {
	cases := []struct {
		rel, rule string
		want      bool
	}{
		{"internal/service/service.go", "time-now", true},
		{"internal/service/bad.go", "time-now", false},
		{"internal/service/service.go", "math-rand", false},
		{"internal/gen/gen.go", "math-rand", true},
		{"internal/gen/sub/x.go", "math-rand", true},
		{"internal/gently/x.go", "math-rand", false}, // prefix must be path-segment exact
		{"cmd/loadbench/main.go", "time-now", true},
	}
	for _, c := range cases {
		if got := ruleAllowed(c.rel, c.rule); got != c.want {
			t.Errorf("ruleAllowed(%q, %q) = %v, want %v", c.rel, c.rule, got, c.want)
		}
	}
}
