// Command figures is a fixture: a named map type ranged in a serialized
// package, plus a renamed time import.
package main

import (
	"fmt"
	clock "time"
)

type counts map[string]int

var global = counts{"a": 1}

func main() {
	for k := range global { // finding: range-map (named map type via var)
		fmt.Println(k)
	}
	for k := range (counts{"b": 2}) { // finding: range-map (map literal)
		fmt.Println(k)
	}
	fmt.Println(clock.Now()) // finding: time-now (renamed import)
}
