package service

import "time"

// latency is fine here: internal/service/service.go carries a time-now
// allowlist entry for the request-latency clock.
func latency() time.Duration {
	start := time.Now()
	return time.Since(start)
}
