// Package service is a fixture: every construct here is a violation.
package service

import "time"

type cache struct {
	entries map[string]int
}

func render(c *cache) string {
	out := ""
	m := make(map[string]int)
	for k := range m { // finding: range-map (make assignment)
		out += k
	}
	for k, v := range c.entries { // finding: range-map (map-typed field)
		out += k
		_ = v
	}
	for k := range index() { // finding: range-map (map-returning func)
		out += k
	}
	_ = time.Now() // finding: time-now (bad.go is not allowlisted)
	return out
}

func index() map[string]bool { return nil }
