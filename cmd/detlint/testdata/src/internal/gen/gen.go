// Package gen is a fixture for the allowlist: seeded math/rand is the
// sanctioned randomness.
package gen

import "math/rand"

func roll(seed int64) int { return rand.New(rand.NewSource(seed)).Int() }
