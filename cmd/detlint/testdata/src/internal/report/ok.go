// Package report is a fixture: determinism-clean patterns plus one
// annotated suppression.
package report

import "sort"

type set map[string]bool

func render(s set, rows []string) string {
	// The sanctioned shape: sorted key slice, deterministic order.
	keys := make([]string, 0, len(s))
	//detlint:allow range-map
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k
	}
	for _, r := range rows { // slice range: no finding
		out += r
	}
	return out
}
