// Package other is a fixture outside the serialized set: map ranges are
// fine here, but math/rand is not.
package other

import "math/rand" // finding: math-rand

func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // no finding: not a serialized package
		total += v
	}
	return total + rand.Int()
}
