// Package obs is a fixture: the trace-export package serializes output,
// so the range-map rule applies here too.
package obs

type timeline struct {
	tracks map[int]string
}

func export(t *timeline) string {
	out := ""
	for _, name := range t.tracks { // finding: range-map (map-typed field)
		out += name
	}
	return out
}
