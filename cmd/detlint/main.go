// Command detlint is the determinism lint wall: a stdlib go/ast pass
// over the repository's non-test sources enforcing the invariants the
// golden and fuzzing oracles depend on — byte-identical output for
// identical input.
//
// Rules:
//
//   - range-map: no `range` over a map in the packages that serialize
//     output (internal/service, internal/report, cmd/figures). Go map
//     iteration order is randomized per run, so a map range feeding a
//     response document, table or figure breaks byte-determinism in the
//     worst way: rarely, and only in production. Iterate a sorted key
//     slice or a dense index instead. Map-ness is resolved
//     syntactically at package scope (declared types, make/literal
//     assignments, struct fields, package-local constructors), so the
//     rule has no false positives and misses only maps smuggled through
//     interfaces — reviews catch those.
//   - time-now: no time.Now/time.Since outside the allowlist. Wall
//     clocks in the analysis or rendering path make output depend on
//     when it ran.
//   - math-rand: no math/rand import outside the allowlist. The only
//     sanctioned randomness is internal/gen's seeded program generator.
//
// Suppressions: a `//detlint:allow <rule>` comment on the offending
// line (or the line above) silences one rule for that line. The baked-in
// allowlist below carries the repository's sanctioned uses — the serving
// layer's request-latency clock and the load harness's wall-clock
// measurements — so new uses need either a review-visible annotation or
// an entry here.
//
// Usage:
//
//	detlint            # lint the repository rooted at the cwd
//	detlint -root DIR  # lint another tree
//
// Exit status 1 when any finding is reported; findings print one per
// line as path:line:col: [rule] message. CI runs detlint in the lint
// job beside scripts/doc_lint.sh.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// serializedPkgs are the directories (relative to the module root) whose
// output must be byte-deterministic: the range-map rule applies here.
var serializedPkgs = map[string]bool{
	"internal/api":        true,
	"internal/api/client": true,
	"internal/cluster":    true,
	"internal/service":    true,
	"internal/report":     true,
	"internal/obs":        true,
	"cmd/figures":         true,
}

// allowlist maps a path prefix (a file or a directory, relative to the
// module root) to the rules sanctioned under it.
var allowlist = map[string][]string{
	// The serving layer measures request latency for /metricz; the
	// wall clock never reaches a response document.
	"internal/service/service.go": {"time-now"},
	// The load harness exists to measure wall-clock served latency, and
	// jitters its submitters.
	"cmd/loadbench": {"time-now", "math-rand"},
	// The program generator is the sanctioned randomness: a seeded,
	// versioned PRNG whose whole point is reproducible pseudo-random
	// programs.
	"internal/gen": {"math-rand"},
}

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

func main() {
	root := flag.String("root", ".", "module root to lint")
	flag.Parse()

	findings, err := Lint(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// Lint walks every non-test .go file under root (skipping testdata and
// dot-directories) and returns the findings sorted by position.
func Lint(root string) ([]Finding, error) {
	dirs := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		dirs[dir] = append(dirs[dir], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	var all []Finding
	for _, files := range dirs {
		fs, err := lintPackage(root, files)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return all, nil
}

// lintPackage parses one directory's files together (map-ness is
// resolved at package scope) and checks each file.
func lintPackage(root string, files []string) ([]Finding, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	rels := make([]string, len(files))
	for i, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		rels[i] = filepath.ToSlash(rel)
	}

	maps := collectMaps(parsed)
	var out []Finding
	for i, f := range parsed {
		rel := rels[i]
		allowed := suppressions(fset, f)
		emit := func(pos token.Pos, rule, msg string) {
			p := fset.Position(pos)
			p.Filename = rel
			if ruleAllowed(rel, rule) || allowed[lineRule{p.Line, rule}] {
				return
			}
			out = append(out, Finding{Pos: p, Rule: rule, Msg: msg})
		}
		checkFile(f, filepath.ToSlash(filepath.Dir(rel)), maps, emit)
	}
	return out, nil
}

// ruleAllowed reports whether the baked-in allowlist sanctions rule for
// the given module-relative path.
func ruleAllowed(rel, rule string) bool {
	for prefix, rules := range allowlist {
		if rel != prefix && !strings.HasPrefix(rel, prefix+"/") {
			continue
		}
		for _, r := range rules {
			if r == rule {
				return true
			}
		}
	}
	return false
}

type lineRule struct {
	line int
	rule string
}

// suppressions collects `//detlint:allow <rule>` directives: each one
// silences the rule on its own line and the line below (so the directive
// can sit above the offending statement).
func suppressions(fset *token.FileSet, f *ast.File) map[lineRule]bool {
	out := map[lineRule]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "detlint:allow") {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, rule := range strings.Fields(strings.TrimPrefix(text, "detlint:allow")) {
				out[lineRule{line, rule}] = true
				out[lineRule{line + 1, rule}] = true
			}
		}
	}
	return out
}

// mapSets is the package-scope syntactic map-ness index.
type mapSets struct {
	names  map[string]bool // idents declared with map type or map make/literal
	fields map[string]bool // struct field names with map type
	funcs  map[string]bool // package funcs returning a map
	types  map[string]bool // named types whose definition is a map
}

// collectMaps builds the package's map-ness index in two passes: named
// map types first, then every declaration site that uses them.
func collectMaps(files []*ast.File) *mapSets {
	m := &mapSets{
		names:  map[string]bool{},
		fields: map[string]bool{},
		funcs:  map[string]bool{},
		types:  map[string]bool{},
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if ts, ok := n.(*ast.TypeSpec); ok {
				if _, isMap := ts.Type.(*ast.MapType); isMap {
					m.types[ts.Name.Name] = true
				}
			}
			return true
		})
	}
	isMapType := m.isMapTypeExpr
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				if n.Type != nil && isMapType(n.Type) {
					for _, name := range n.Names {
						m.names[name.Name] = true
					}
				}
				for i, v := range n.Values {
					if i < len(n.Names) && m.isMapValue(v) {
						m.names[n.Names[i].Name] = true
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) && m.isMapValue(rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							m.names[id.Name] = true
						}
					}
				}
			case *ast.Field:
				if isMapType(n.Type) {
					for _, name := range n.Names {
						m.fields[name.Name] = true
						m.names[name.Name] = true // params and results are plain idents
					}
				}
			case *ast.FuncDecl:
				if n.Type.Results != nil {
					for _, r := range n.Type.Results.List {
						if len(r.Names) == 0 && isMapType(r.Type) {
							m.funcs[n.Name.Name] = true
						}
					}
				}
			}
			return true
		})
	}
	return m
}

func (m *mapSets) isMapTypeExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.MapType:
		return true
	case *ast.Ident:
		return m.types[e.Name]
	}
	return false
}

// isMapValue reports whether the expression syntactically produces a map:
// a map literal, make(map...), or a call of a package-local map-returning
// function.
func (m *mapSets) isMapValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return e.Type != nil && m.isMapTypeExpr(e.Type)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if id.Name == "make" && len(e.Args) > 0 {
				return m.isMapTypeExpr(e.Args[0])
			}
			return m.funcs[id.Name]
		}
	}
	return false
}

// rangesOverMap reports whether the range expression is map-typed per
// the package index.
func (m *mapSets) rangesOverMap(x ast.Expr) bool {
	switch x := x.(type) {
	case *ast.ParenExpr:
		return m.rangesOverMap(x.X)
	case *ast.Ident:
		return m.names[x.Name]
	case *ast.SelectorExpr:
		return m.fields[x.Sel.Name]
	}
	return m.isMapValue(x)
}

// checkFile runs every rule over one file.
func checkFile(f *ast.File, dir string, maps *mapSets, emit func(token.Pos, string, string)) {
	timeName, randSpec := importNames(f)
	if randSpec != nil {
		emit(randSpec.Pos(), "math-rand",
			"math/rand import: the only sanctioned randomness is internal/gen's seeded generator")
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if serializedPkgs[dir] && maps.rangesOverMap(n.X) {
				emit(n.Pos(), "range-map",
					"range over a map in a package that serializes output: iteration order is randomized per run — iterate a sorted key slice instead")
			}
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && timeName != "" && id.Name == timeName {
				if n.Sel.Name == "Now" || n.Sel.Name == "Since" {
					emit(n.Pos(), "time-now",
						"wall-clock read (time."+n.Sel.Name+"): deterministic paths must not depend on when they ran")
				}
			}
		}
		return true
	})
}

// importNames returns the local name binding the time import ("" when
// time is not imported) and the math/rand import spec if present.
func importNames(f *ast.File) (timeName string, randSpec *ast.ImportSpec) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch path {
		case "time":
			timeName = "time"
			if imp.Name != nil {
				timeName = imp.Name.Name
			}
		case "math/rand", "math/rand/v2":
			randSpec = imp
		}
	}
	return
}
