// Command loadbench drives the analysis service under load — in-process
// (library calls straight into internal/service) or over HTTP (loopback
// POSTs against a self-hosted or external refidemd) — and reports
// throughput and latency in `go test -bench` row format, so the output
// pipes into cmd/benchjson and merges into BENCH_results.json.
//
// Usage:
//
//	loadbench                              # in-process, label + simulate phases
//	loadbench -mode http                   # self-hosts a daemon on a loopback port
//	loadbench -mode http -url http://H:P   # drives an external refidemd
//	loadbench -merge BENCH_results.json    # also merge rows into the results file
//
// Output rows (one per phase):
//
//	BenchmarkLoadLabel/mode=inproc/coalesce=true  2000  52431 ns/op  19073 req/s  ...
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"refidem/internal/benchfmt"
	"refidem/internal/gen"
	"refidem/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		os.Exit(1)
	}
}

type options struct {
	mode        string
	url         string
	n           int
	nSimulate   int
	concurrency int
	programs    int
	seed        int64
	coalesce    bool
	shards      int
	workers     int
	merge       string
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("loadbench", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var o options
	fs.StringVar(&o.mode, "mode", "inproc", "driver mode: inproc or http")
	fs.StringVar(&o.url, "url", "", "target base URL for -mode http (empty self-hosts a daemon)")
	fs.IntVar(&o.n, "n", 2000, "label requests to issue")
	fs.IntVar(&o.nSimulate, "n-simulate", 0, "simulate requests to issue (0 = n/4)")
	fs.IntVar(&o.concurrency, "concurrency", 32, "concurrent client goroutines")
	fs.IntVar(&o.programs, "programs", 16, "distinct generated programs in the request rotation")
	fs.Int64Var(&o.seed, "seed", 1, "program generation seed")
	fs.BoolVar(&o.coalesce, "coalesce", true, "coalesce identical in-flight requests (in-process and self-hosted)")
	fs.IntVar(&o.shards, "shards", 8, "cache shards (in-process and self-hosted)")
	fs.IntVar(&o.workers, "workers", 0, "service workers (0 = all cores)")
	fs.StringVar(&o.merge, "merge", "", "merge result rows into this BENCH_results.json file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.nSimulate == 0 {
		o.nSimulate = o.n / 4
	}

	srcs := make([]string, o.programs)
	profiles := gen.Profiles()
	for i := range srcs {
		srcs[i] = gen.FromProfile(profiles[i%len(profiles)], o.seed+int64(i)).Program.Format()
	}

	var do func(op string, i int) error
	var target string
	switch o.mode {
	case "inproc":
		cfg := service.DefaultConfig()
		cfg.Coalesce = o.coalesce
		cfg.Shards = o.shards
		cfg.Workers = o.workers
		cfg.QueueDepth = 1 << 16
		s := service.New(cfg)
		defer s.Close()
		ctx := context.Background()
		do = func(op string, i int) error {
			_, err := s.Do(ctx, service.Request{Op: op, Program: srcs[i%len(srcs)]})
			return err
		}
		target = "inproc"
	case "http":
		base := o.url
		if base == "" {
			cfg := service.DefaultConfig()
			cfg.Coalesce = o.coalesce
			cfg.Shards = o.shards
			cfg.Workers = o.workers
			cfg.QueueDepth = 1 << 16
			s := service.New(cfg)
			defer s.Close()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			httpSrv := &http.Server{Handler: s.Handler()}
			go httpSrv.Serve(ln)
			defer httpSrv.Close()
			base = "http://" + ln.Addr().String()
			fmt.Fprintf(os.Stderr, "loadbench: self-hosted daemon at %s\n", base)
		}
		client := &http.Client{Timeout: 60 * time.Second}
		do = func(op string, i int) error {
			body, err := json.Marshal(service.Request{Program: srcs[i%len(srcs)]})
			if err != nil {
				return err
			}
			resp, err := client.Post(base+"/v1/"+op, "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				return nil
			case http.StatusServiceUnavailable:
				oe := &overloadErr{}
				if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
					oe.retryAfter = time.Duration(secs) * time.Second
				}
				return oe
			default:
				return fmt.Errorf("%s: status %d", op, resp.StatusCode)
			}
		}
		target = "http"
	default:
		return fmt.Errorf("unknown -mode %q (want inproc or http)", o.mode)
	}

	label := fmt.Sprintf("mode=%s/coalesce=%v", target, o.coalesce)
	rows := []row{}
	for _, phase := range []struct {
		name string
		op   string
		n    int
	}{
		{"BenchmarkLoadLabel/" + label, service.OpLabel, o.n},
		{"BenchmarkLoadSimulate/" + label, service.OpSimulate, o.nSimulate},
	} {
		if phase.n <= 0 {
			continue
		}
		r, err := drive(phase.name, phase.op, phase.n, o.concurrency, do)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.benchLine())
		rows = append(rows, r)
	}
	if o.merge != "" {
		if err := mergeRows(o.merge, rows); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadbench: merged %d rows into %s\n", len(rows), o.merge)
	}
	return nil
}

// row is one measured phase.
type row struct {
	name      string
	n         int
	elapsed   time.Duration
	lats      []int64 // per-request ns, sorted
	retries   int64
	backoffNs int64 // total time spent sleeping between overload retries
}

// overloadErr is an overload rejection carrying the server's Retry-After
// hint; it unwraps to service.ErrOverloaded so error branching is uniform
// across the in-process and HTTP drivers.
type overloadErr struct {
	retryAfter time.Duration
}

func (e *overloadErr) Error() string { return service.ErrOverloaded.Error() }
func (e *overloadErr) Unwrap() error { return service.ErrOverloaded }

// Overload backoff schedule: jittered exponential, starting at
// backoffBase, doubling per consecutive rejection, capped at backoffCap —
// or at the server's Retry-After hint when it sends one (the hint is the
// server's own estimate of when capacity returns, so the schedule never
// sleeps past it). A request gives up once it has spent overloadBudget
// asleep: a target answering 503 forever (shut down, or a proxy in front
// of a dead daemon) must fail the run instead of spinning indefinitely.
const (
	backoffBase    = 200 * time.Microsecond
	backoffCap     = 100 * time.Millisecond
	overloadBudget = 10 * time.Second
)

// backoffFor computes the jittered sleep for the attempt-th consecutive
// overload (attempt 0 = first rejection). The jitter spreads sleeps over
// [d/2, 3d/2) so retried clients don't re-collide in lockstep.
func backoffFor(attempt int, hint time.Duration, jitter func(int64) int64) time.Duration {
	if attempt > 16 {
		attempt = 16 // the cap has long since taken over; avoid shift overflow
	}
	d := backoffBase << attempt
	limit := backoffCap
	if hint > 0 {
		limit = hint
	}
	if d > limit {
		d = limit
	}
	return d/2 + time.Duration(jitter(int64(d)))
}

// drive issues n requests of one op across the concurrent clients,
// retrying overload rejections with jittered exponential backoff —
// backpressure is expected behaviour under saturation, not failure.
func drive(name, op string, n, concurrency int, do func(op string, i int) error) (row, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	var (
		next      atomic.Int64
		retries   atomic.Int64
		backoffNs atomic.Int64
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstE    error
	)
	lats := make([]int64, n)
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				t0 := time.Now()
				attempt := 0
				var slept time.Duration
				for {
					err := do(op, i)
					if err == nil {
						break
					}
					if errors.Is(err, service.ErrOverloaded) && slept < overloadBudget {
						var hint time.Duration
						var oe *overloadErr
						if errors.As(err, &oe) {
							hint = oe.retryAfter
						}
						d := backoffFor(attempt, hint, rng.Int63n)
						retries.Add(1)
						backoffNs.Add(int64(d))
						slept += d
						attempt++
						time.Sleep(d)
						continue
					}
					if errors.Is(err, service.ErrOverloaded) {
						err = fmt.Errorf("still overloaded after %v of backoff (%d retries): %w",
							slept.Round(time.Millisecond), attempt, err)
					}
					mu.Lock()
					if firstE == nil {
						firstE = fmt.Errorf("request %d: %w", i, err)
					}
					mu.Unlock()
					return
				}
				lats[i] = time.Since(t0).Nanoseconds()
			}
		}(c)
	}
	wg.Wait()
	if firstE != nil {
		return row{}, firstE
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return row{name: name, n: n, elapsed: time.Since(start), lats: lats,
		retries: retries.Load(), backoffNs: backoffNs.Load()}, nil
}

func (r row) pct(p float64) int64 {
	if len(r.lats) == 0 {
		return 0
	}
	i := int(p * float64(len(r.lats)-1))
	return r.lats[i]
}

// benchLine renders the row in `go test -bench` format (parsable by
// cmd/benchjson: iterations, then value/unit pairs).
func (r row) benchLine() string {
	nsPerOp := float64(r.elapsed.Nanoseconds()) / float64(r.n)
	reqPerSec := float64(r.n) / r.elapsed.Seconds()
	return fmt.Sprintf("%s \t%8d\t%12.0f ns/op\t%12.0f req/s\t%10d p50-ns\t%10d p95-ns\t%10d p99-ns\t%10d max-ns\t%6d overload-retries\t%10d backoff-ns",
		r.name, r.n, nsPerOp, reqPerSec,
		r.pct(0.50), r.pct(0.95), r.pct(0.99), r.lats[len(r.lats)-1], r.retries, r.backoffNs)
}

// mergeRows inserts the measured rows into the results file's
// "benchmarks" map (the shared internal/benchfmt document), creating the
// file if needed and leaving every other key untouched.
func mergeRows(path string, rows []row) error {
	doc := benchfmt.Document{Benchmarks: map[string]benchfmt.Result{}}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("bad results file %s: %w", path, err)
		}
		if doc.Benchmarks == nil {
			doc.Benchmarks = map[string]benchfmt.Result{}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	for _, r := range rows {
		name := strings.TrimSpace(r.name)
		doc.Benchmarks[name] = benchfmt.Result{
			Iterations: int64(r.n),
			NsPerOp:    float64(r.elapsed.Nanoseconds()) / float64(r.n),
			Metrics: map[string]float64{
				"req/s":            float64(r.n) / r.elapsed.Seconds(),
				"p50-ns":           float64(r.pct(0.50)),
				"p95-ns":           float64(r.pct(0.95)),
				"p99-ns":           float64(r.pct(0.99)),
				"max-ns":           float64(r.lats[len(r.lats)-1]),
				"overload-retries": float64(r.retries),
				"backoff-ns":       float64(r.backoffNs),
			},
		}
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}
