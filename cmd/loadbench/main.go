// Command loadbench drives the analysis service under load — in-process
// (library calls straight into internal/service), over HTTP (loopback
// POSTs against a self-hosted or external refidemd), or against a
// self-hosted multi-node cluster (N in-process replicas behind the
// consistent-hash router) — and reports throughput and latency in
// `go test -bench` row format, so the output pipes into cmd/benchjson
// and merges into BENCH_results.json.
//
// All wire traffic goes through internal/api/client: the typed client
// maps statuses back onto the api error taxonomy and supplies the
// jittered overload-backoff schedule, so this harness and the router
// retry identically.
//
// Usage:
//
//	loadbench                              # in-process, label + simulate phases
//	loadbench -mode http                   # self-hosts a daemon on a loopback port
//	loadbench -mode http -url http://H:P   # drives an external refidemd
//	loadbench -mode cluster -replicas 4    # router over 4 in-process replicas
//	loadbench -zipf 1.2                    # Zipf-skewed program popularity
//	loadbench -n-delta 500                 # adds a delta re-label phase
//	loadbench -merge BENCH_results.json    # also merge rows into the results file
//
// Output rows (one per phase):
//
//	BenchmarkLoadLabel/mode=inproc/coalesce=true  2000  52431 ns/op  19073 req/s  ...
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"refidem/internal/api"
	"refidem/internal/api/client"
	"refidem/internal/benchfmt"
	"refidem/internal/cluster"
	"refidem/internal/gen"
	"refidem/internal/ir"
	"refidem/internal/lang"
	"refidem/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		os.Exit(1)
	}
}

type options struct {
	mode        string
	url         string
	n           int
	nSimulate   int
	nDelta      int
	concurrency int
	programs    int
	seed        int64
	zipf        float64
	coalesce    bool
	shards      int
	workers     int
	replicas    int
	merge       string
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("loadbench", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var o options
	fs.StringVar(&o.mode, "mode", "inproc", "driver mode: inproc, http or cluster")
	fs.StringVar(&o.url, "url", "", "target base URL for -mode http (empty self-hosts a daemon)")
	fs.IntVar(&o.n, "n", 2000, "label requests to issue")
	fs.IntVar(&o.nSimulate, "n-simulate", 0, "simulate requests to issue (0 = n/4)")
	fs.IntVar(&o.nDelta, "n-delta", 0, "delta re-label requests to issue (0 skips the phase)")
	fs.IntVar(&o.concurrency, "concurrency", 32, "concurrent client goroutines")
	fs.IntVar(&o.programs, "programs", 16, "distinct generated programs in the request rotation")
	fs.Int64Var(&o.seed, "seed", 1, "program generation seed")
	fs.Float64Var(&o.zipf, "zipf", 0, "Zipf exponent for program popularity (>1; 0 = uniform rotation)")
	fs.BoolVar(&o.coalesce, "coalesce", true, "coalesce identical in-flight requests (self-hosted modes)")
	fs.IntVar(&o.shards, "shards", 8, "cache shards (self-hosted modes)")
	fs.IntVar(&o.workers, "workers", 0, "service workers (0 = all cores; cluster mode defaults to 1 per replica)")
	fs.IntVar(&o.replicas, "replicas", 4, "replica count for -mode cluster")
	fs.StringVar(&o.merge, "merge", "", "merge result rows into this BENCH_results.json file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.nSimulate == 0 {
		o.nSimulate = o.n / 4
	}
	if o.zipf != 0 && o.zipf <= 1 {
		return fmt.Errorf("-zipf must be > 1 (rand.NewZipf's domain), got %v", o.zipf)
	}

	srcs := make([]string, o.programs)
	profiles := gen.Profiles()
	for i := range srcs {
		srcs[i] = gen.FromProfile(profiles[i%len(profiles)], o.seed+int64(i)).Program.Format()
	}
	pick := popularity(o, len(srcs))
	deltas := deltaRequests(srcs)

	var post func(req api.Request) error
	var target string
	ctx := context.Background()
	switch o.mode {
	case "inproc":
		s := service.New(selfCfg(o, o.workers))
		defer s.Close()
		post = func(req api.Request) error {
			_, err := s.Do(ctx, req)
			return err
		}
		target = "inproc"
	case "http":
		base := o.url
		if base == "" {
			s := service.New(selfCfg(o, o.workers))
			defer s.Close()
			addr, stop, err := serve(s.Handler())
			if err != nil {
				return err
			}
			defer stop()
			base = addr
			fmt.Fprintf(os.Stderr, "loadbench: self-hosted daemon at %s\n", base)
		}
		c := client.New(base)
		post = func(req api.Request) error {
			_, err := c.Do(ctx, req)
			return err
		}
		target = "http"
	case "cluster":
		if o.replicas < 1 {
			return fmt.Errorf("-replicas must be >= 1, got %d", o.replicas)
		}
		workers := o.workers
		if workers == 0 {
			workers = 1 // per-replica; makes replica scaling the variable under test
		}
		var reps []cluster.Replica
		for r := 0; r < o.replicas; r++ {
			s := service.New(selfCfg(o, workers))
			defer s.Close()
			addr, stop, err := serve(s.Handler())
			if err != nil {
				return err
			}
			defer stop()
			reps = append(reps, cluster.Replica{Name: fmt.Sprintf("rep-%d", r), URL: addr})
		}
		rt, err := cluster.New(cluster.Config{Replicas: reps, ProbeInterval: 250 * time.Millisecond})
		if err != nil {
			return err
		}
		defer rt.Close()
		addr, stop, err := serve(rt.Handler())
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "loadbench: router at %s over %d replicas\n", addr, o.replicas)
		c := client.New(addr)
		post = func(req api.Request) error {
			_, err := c.Do(ctx, req)
			return err
		}
		target = fmt.Sprintf("cluster/replicas=%d", o.replicas)
	default:
		return fmt.Errorf("unknown -mode %q (want inproc, http or cluster)", o.mode)
	}
	do := func(op string, i int) error {
		req := request(op, srcs, deltas, pick[i])
		err := post(req)
		if err != nil && req.Base != "" && errors.Is(err, api.ErrUnknownBase) {
			// Evicted base: re-send the full program (re-registering it),
			// then retry the delta — the documented client recovery.
			if err = post(api.Request{Op: api.OpLabel, Program: srcs[pick[i]]}); err == nil {
				err = post(req)
			}
		}
		return err
	}

	label := fmt.Sprintf("mode=%s/coalesce=%v", target, o.coalesce)
	if o.zipf > 0 {
		label += fmt.Sprintf("/zipf=%v", o.zipf)
	}
	rows := []row{}
	for _, phase := range []struct {
		name string
		op   string
		n    int
	}{
		{"BenchmarkLoadLabel/" + label, service.OpLabel, o.n},
		{"BenchmarkLoadSimulate/" + label, service.OpSimulate, o.nSimulate},
		{"BenchmarkLoadLabelDelta/" + label, opLabelDelta, o.nDelta},
	} {
		if phase.n <= 0 {
			continue
		}
		if phase.op == opLabelDelta {
			// Register every base before timing: the delta phase measures
			// incremental re-labels, not the bases' first full labels.
			for i, src := range srcs {
				if err := post(api.Request{Op: api.OpLabel, Program: src}); err != nil {
					return fmt.Errorf("pre-seeding base %d: %w", i, err)
				}
			}
		}
		r, err := drive(phase.name, phase.op, phase.n, o.concurrency, do)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.benchLine())
		rows = append(rows, r)
	}
	if o.merge != "" {
		if err := mergeRows(o.merge, rows); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadbench: merged %d rows into %s\n", len(rows), o.merge)
	}
	return nil
}

// opLabelDelta is the harness-internal op name for the delta phase; on
// the wire it is an OpLabel request with Base+Patches set.
const opLabelDelta = "label-delta"

// selfCfg is the service configuration for self-hosted targets.
func selfCfg(o options, workers int) service.Config {
	cfg := service.DefaultConfig()
	cfg.Coalesce = o.coalesce
	cfg.Shards = o.shards
	cfg.Workers = workers
	cfg.QueueDepth = 1 << 16
	return cfg
}

// serve exposes a handler on an ephemeral loopback port.
func serve(h http.Handler) (addr string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// popularity precomputes the request→program assignment: uniform
// rotation by default, or Zipf-skewed when -zipf is set (popular
// programs then dominate, exercising the response caches and — in
// cluster mode — concentrating load on the owners of hot fingerprints).
func popularity(o options, programs int) []int {
	n := o.n + o.nSimulate + o.nDelta + programs
	pick := make([]int, n)
	if o.zipf == 0 || programs == 1 {
		for i := range pick {
			pick[i] = i % programs
		}
		return pick
	}
	rng := rand.New(rand.NewSource(o.seed))
	z := rand.NewZipf(rng, o.zipf, 1, uint64(programs-1))
	for i := range pick {
		pick[i] = int(z.Uint64())
	}
	return pick
}

// deltaRequests builds one delta request per program: the base
// fingerprint plus a patch shrinking the first loop region by one trip
// (To -= Step) — a minimal real edit that re-labels only the regions it
// reaches. Programs with no shrinkable loop fall back to a patch
// replaying the first region unchanged.
func deltaRequests(srcs []string) []api.Request {
	out := make([]api.Request, len(srcs))
	for i, src := range srcs {
		p, err := lang.Parse(src)
		if err != nil || len(p.Regions) == 0 {
			continue // leave zero value; request() falls back to full label
		}
		fp := ir.FingerprintOf(p)
		target := p.Regions[0]
		for _, r := range p.Regions {
			if r.Kind != ir.LoopRegion {
				continue
			}
			if (r.Step > 0 && r.To-r.Step >= r.From) || (r.Step < 0 && r.To-r.Step <= r.From) {
				target = r
				r.To -= r.Step
				break
			}
		}
		out[i] = api.Request{
			Op:      api.OpLabel,
			Base:    hex.EncodeToString(fp[:]),
			Patches: []api.RegionPatch{{Region: target.Name, Source: target.Format()}},
		}
	}
	return out
}

// request builds the i-th request of a phase.
func request(op string, srcs []string, deltas []api.Request, prog int) api.Request {
	if op == opLabelDelta && deltas[prog].Base != "" {
		return deltas[prog]
	}
	if op == opLabelDelta {
		op = service.OpLabel
	}
	return api.Request{Op: op, Program: srcs[prog]}
}

// row is one measured phase.
type row struct {
	name      string
	n         int
	elapsed   time.Duration
	lats      []int64 // per-request ns, sorted
	retries   int64
	backoffNs int64 // total time spent sleeping between overload retries
}

// drive issues n requests of one op across the concurrent clients,
// retrying overload rejections with the client package's jittered
// exponential backoff — backpressure is expected behaviour under
// saturation, not failure.
func drive(name, op string, n, concurrency int, do func(op string, i int) error) (row, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	bo := client.DefaultBackoff()
	var (
		next      atomic.Int64
		retries   atomic.Int64
		backoffNs atomic.Int64
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstE    error
	)
	lats := make([]int64, n)
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				t0 := time.Now()
				attempt := 0
				var slept time.Duration
				for {
					err := do(op, i)
					if err == nil {
						break
					}
					if errors.Is(err, service.ErrOverloaded) && slept < bo.Budget {
						d := bo.SleepFor(attempt, client.RetryAfterHint(err), rng.Int63n)
						retries.Add(1)
						backoffNs.Add(int64(d))
						slept += d
						attempt++
						time.Sleep(d)
						continue
					}
					if errors.Is(err, service.ErrOverloaded) {
						err = fmt.Errorf("still overloaded after %v of backoff (%d retries): %w",
							slept.Round(time.Millisecond), attempt, err)
					}
					mu.Lock()
					if firstE == nil {
						firstE = fmt.Errorf("request %d: %w", i, err)
					}
					mu.Unlock()
					return
				}
				lats[i] = time.Since(t0).Nanoseconds()
			}
		}(c)
	}
	wg.Wait()
	if firstE != nil {
		return row{}, firstE
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return row{name: name, n: n, elapsed: time.Since(start), lats: lats,
		retries: retries.Load(), backoffNs: backoffNs.Load()}, nil
}

func (r row) pct(p float64) int64 {
	if len(r.lats) == 0 {
		return 0
	}
	i := int(p * float64(len(r.lats)-1))
	return r.lats[i]
}

// benchLine renders the row in `go test -bench` format (parsable by
// cmd/benchjson: iterations, then value/unit pairs).
func (r row) benchLine() string {
	nsPerOp := float64(r.elapsed.Nanoseconds()) / float64(r.n)
	reqPerSec := float64(r.n) / r.elapsed.Seconds()
	return fmt.Sprintf("%s \t%8d\t%12.0f ns/op\t%12.0f req/s\t%10d p50-ns\t%10d p95-ns\t%10d p99-ns\t%10d max-ns\t%6d overload-retries\t%10d backoff-ns",
		r.name, r.n, nsPerOp, reqPerSec,
		r.pct(0.50), r.pct(0.95), r.pct(0.99), r.lats[len(r.lats)-1], r.retries, r.backoffNs)
}

// mergeRows inserts the measured rows into the results file's
// "benchmarks" map (the shared internal/benchfmt document), creating the
// file if needed and leaving every other key untouched.
func mergeRows(path string, rows []row) error {
	doc := benchfmt.Document{Benchmarks: map[string]benchfmt.Result{}}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("bad results file %s: %w", path, err)
		}
		if doc.Benchmarks == nil {
			doc.Benchmarks = map[string]benchfmt.Result{}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	for _, r := range rows {
		name := strings.TrimSpace(r.name)
		doc.Benchmarks[name] = benchfmt.Result{
			Iterations: int64(r.n),
			NsPerOp:    float64(r.elapsed.Nanoseconds()) / float64(r.n),
			Metrics: map[string]float64{
				"req/s":            float64(r.n) / r.elapsed.Seconds(),
				"p50-ns":           float64(r.pct(0.50)),
				"p95-ns":           float64(r.pct(0.95)),
				"p99-ns":           float64(r.pct(0.99)),
				"max-ns":           float64(r.lats[len(r.lats)-1]),
				"overload-retries": float64(r.retries),
				"backoff-ns":       float64(r.backoffNs),
			},
		}
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}
