package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"refidem/internal/benchfmt"
)

// TestInprocRun drives a small in-process load and checks the row format
// benchjson parses.
func TestInprocRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "40", "-n-simulate", "8", "-concurrency", "4", "-programs", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	rowRe := regexp.MustCompile(`^Benchmark\S+ \t\s*\d+\t\s*\d+ ns/op\t\s*\d+ req/s\t.*p99-ns`)
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 rows (label, simulate), got %d:\n%s", len(lines), out.String())
	}
	for _, l := range lines {
		if !rowRe.MatchString(l) {
			t.Errorf("row not in bench format: %q", l)
		}
	}
	if !strings.Contains(lines[0], "BenchmarkLoadLabel/mode=inproc/coalesce=true") {
		t.Errorf("unexpected label row name: %q", lines[0])
	}
}

// TestHTTPSelfHosted drives the self-hosted daemon path end to end.
func TestHTTPSelfHosted(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-mode", "http", "-n", "20", "-n-simulate", "4",
		"-concurrency", "4", "-programs", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BenchmarkLoadLabel/mode=http/coalesce=true") {
		t.Errorf("missing http label row:\n%s", out.String())
	}
}

// TestMergeRows verifies rows land in the results document beside
// existing benchmarks without disturbing them.
func TestMergeRows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	seed := `{"go": "go1.23", "benchmarks": {"BenchmarkEngineHOSE": {"iterations": 5, "ns_per_op": 123}}}`
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-n", "10", "-n-simulate", "2", "-concurrency", "2",
		"-programs", "2", "-merge", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchfmt.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Go != "go1.23" {
		t.Errorf("go field clobbered: %q", doc.Go)
	}
	if _, ok := doc.Benchmarks["BenchmarkEngineHOSE"]; !ok {
		t.Error("pre-existing benchmark dropped by merge")
	}
	lbl, ok := doc.Benchmarks["BenchmarkLoadLabel/mode=inproc/coalesce=true"]
	if !ok {
		t.Fatalf("label row missing; have %v", keys(doc.Benchmarks))
	}
	if lbl.Iterations != 10 || lbl.NsPerOp <= 0 || lbl.Metrics["req/s"] <= 0 {
		t.Errorf("bad merged row: %+v", lbl)
	}
}

// TestBackoffSchedule pins the overload backoff: exponential growth from
// the base, jitter inside [d/2, 3d/2), the default cap, and the server's
// Retry-After hint replacing the cap as the ceiling.
func TestBackoffSchedule(t *testing.T) {
	// jitter=0 exposes the lower envelope d/2 deterministically.
	floor := func(n int64) int64 { return 0 }
	for attempt, want := range []time.Duration{
		backoffBase / 2, backoffBase, 2 * backoffBase, 4 * backoffBase,
	} {
		if got := backoffFor(attempt, 0, floor); got != want {
			t.Errorf("attempt %d: backoff = %v, want %v", attempt, got, want)
		}
	}
	// Deep attempts are capped (and the shift must not overflow).
	for _, attempt := range []int{12, 16, 63, 1000} {
		if got := backoffFor(attempt, 0, floor); got != backoffCap/2 {
			t.Errorf("attempt %d: backoff = %v, want cap envelope %v", attempt, got, backoffCap/2)
		}
	}
	// A Retry-After hint becomes the ceiling: the schedule never sleeps
	// past what the server promised.
	hint := 2 * time.Second
	if got := backoffFor(1000, hint, floor); got != hint/2 {
		t.Errorf("hinted backoff = %v, want %v", got, hint/2)
	}
	// Full jitter stays within [d/2, 3d/2).
	ceil := func(n int64) int64 { return n - 1 }
	d := backoffFor(3, 0, ceil)
	if lo, hi := 4*backoffBase, 12*backoffBase; d < lo || d >= hi {
		t.Errorf("jittered backoff %v outside [%v, %v)", d, lo, hi)
	}
}

// TestRowReportsBackoff checks the new totals appear in the bench row and
// the merged document.
func TestRowReportsBackoff(t *testing.T) {
	r := row{name: "BenchmarkX", n: 1, elapsed: time.Second,
		lats: []int64{5}, retries: 3, backoffNs: 12345}
	line := r.benchLine()
	for _, want := range []string{"overload-retries", "backoff-ns", "12345"} {
		if !strings.Contains(line, want) {
			t.Errorf("bench line missing %q: %s", want, line)
		}
	}
}

func TestBadMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "carrier-pigeon"}, &out); err == nil {
		t.Error("expected error for unknown mode")
	}
}

func keys(m map[string]benchfmt.Result) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
