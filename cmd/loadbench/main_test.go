package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"refidem/internal/benchfmt"
)

// TestInprocRun drives a small in-process load and checks the row format
// benchjson parses.
func TestInprocRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "40", "-n-simulate", "8", "-concurrency", "4", "-programs", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	rowRe := regexp.MustCompile(`^Benchmark\S+ \t\s*\d+\t\s*\d+ ns/op\t\s*\d+ req/s\t.*p99-ns`)
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 rows (label, simulate), got %d:\n%s", len(lines), out.String())
	}
	for _, l := range lines {
		if !rowRe.MatchString(l) {
			t.Errorf("row not in bench format: %q", l)
		}
	}
	if !strings.Contains(lines[0], "BenchmarkLoadLabel/mode=inproc/coalesce=true") {
		t.Errorf("unexpected label row name: %q", lines[0])
	}
}

// TestHTTPSelfHosted drives the self-hosted daemon path end to end.
func TestHTTPSelfHosted(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-mode", "http", "-n", "20", "-n-simulate", "4",
		"-concurrency", "4", "-programs", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BenchmarkLoadLabel/mode=http/coalesce=true") {
		t.Errorf("missing http label row:\n%s", out.String())
	}
}

// TestMergeRows verifies rows land in the results document beside
// existing benchmarks without disturbing them.
func TestMergeRows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	seed := `{"go": "go1.23", "benchmarks": {"BenchmarkEngineHOSE": {"iterations": 5, "ns_per_op": 123}}}`
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-n", "10", "-n-simulate", "2", "-concurrency", "2",
		"-programs", "2", "-merge", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchfmt.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Go != "go1.23" {
		t.Errorf("go field clobbered: %q", doc.Go)
	}
	if _, ok := doc.Benchmarks["BenchmarkEngineHOSE"]; !ok {
		t.Error("pre-existing benchmark dropped by merge")
	}
	lbl, ok := doc.Benchmarks["BenchmarkLoadLabel/mode=inproc/coalesce=true"]
	if !ok {
		t.Fatalf("label row missing; have %v", keys(doc.Benchmarks))
	}
	if lbl.Iterations != 10 || lbl.NsPerOp <= 0 || lbl.Metrics["req/s"] <= 0 {
		t.Errorf("bad merged row: %+v", lbl)
	}
}

// TestClusterSelfHosted drives the router-over-replicas path end to end,
// including a delta phase and Zipf-skewed popularity.
func TestClusterSelfHosted(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-mode", "cluster", "-replicas", "2", "-n", "24",
		"-n-simulate", "4", "-n-delta", "12", "-concurrency", "4",
		"-programs", "3", "-zipf", "1.3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"BenchmarkLoadLabel/mode=cluster/replicas=2/coalesce=true/zipf=1.3",
		"BenchmarkLoadLabelDelta/mode=cluster/replicas=2/coalesce=true/zipf=1.3",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing row %q:\n%s", want, out.String())
		}
	}
}

// TestDeltaPhaseInproc exercises the delta phase without the wire: the
// pre-seed registers every base, then the phase issues Base+Patches
// requests.
func TestDeltaPhaseInproc(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "8", "-n-simulate", "1", "-n-delta", "16",
		"-concurrency", "2", "-programs", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BenchmarkLoadLabelDelta/mode=inproc/coalesce=true") {
		t.Errorf("missing delta row:\n%s", out.String())
	}
}

// TestDeltaRequestsMutateLoops checks the generated patches are real
// edits: every program with a shrinkable loop gets a Base+Patches
// request whose patch parses and differs from the original region.
func TestDeltaRequestsMutateLoops(t *testing.T) {
	srcs := []string{
		"program p1\nvar a[8]\nregion r0 loop k = 0 to 7 {\n  a[k] = (k + 1)\n}\n",
	}
	deltas := deltaRequests(srcs)
	if deltas[0].Base == "" || len(deltas[0].Patches) != 1 {
		t.Fatalf("no delta built: %+v", deltas[0])
	}
	p := deltas[0].Patches[0]
	if p.Region != "r0" {
		t.Fatalf("patched region %q", p.Region)
	}
	if !strings.Contains(p.Source, "0 to 6") {
		t.Fatalf("patch did not shrink the loop:\n%s", p.Source)
	}
}

// TestRowReportsBackoff checks the new totals appear in the bench row and
// the merged document.
func TestRowReportsBackoff(t *testing.T) {
	r := row{name: "BenchmarkX", n: 1, elapsed: time.Second,
		lats: []int64{5}, retries: 3, backoffNs: 12345}
	line := r.benchLine()
	for _, want := range []string{"overload-retries", "backoff-ns", "12345"} {
		if !strings.Contains(line, want) {
			t.Errorf("bench line missing %q: %s", want, line)
		}
	}
}

func TestBadMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "carrier-pigeon"}, &out); err == nil {
		t.Error("expected error for unknown mode")
	}
}

func keys(m map[string]benchfmt.Result) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
