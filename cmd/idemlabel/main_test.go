package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from current output")

// checkGolden compares got against the named golden file, rewriting it
// under -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./cmd/idemlabel -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestExamplesGolden locks the table output of every built-in example, so
// Result-accessor changes cannot silently alter the tool.
func TestExamplesGolden(t *testing.T) {
	for _, tc := range []struct {
		golden   string
		example  string
		showDeps bool
		dot      string
	}{
		{"fig1.golden", "fig1", false, ""},
		{"fig2.golden", "fig2", true, ""},
		{"fig3.golden", "fig3", false, ""},
		{"buts.golden", "buts", true, ""},
		{"fig2_segments.dot.golden", "fig2", false, "segments"},
		{"fig3_deps.dot.golden", "fig3", false, "deps"},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, tc.example, "", tc.showDeps, tc.dot); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.golden, buf.Bytes())
		})
	}
}

// TestRunStable asserts the tool output is identical across repeated runs
// (map iteration must never leak into the report).
func TestRunStable(t *testing.T) {
	var first bytes.Buffer
	if err := run(&first, "buts", "", true, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again bytes.Buffer
		if err := run(&again, "buts", "", true, ""); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatal("output differs across runs")
		}
	}
}

// TestRunErrors covers the error paths main maps to exit code 1.
func TestRunErrors(t *testing.T) {
	cases := []struct {
		name          string
		example, file string
		dot           string
	}{
		{"no input", "", "", ""},
		{"both inputs", "fig1", "x.ril", ""},
		{"unknown example", "nope", "", ""},
		{"missing file", "", filepath.Join(t.TempDir(), "missing.ril"), ""},
		{"bad dot kind", "fig2", "", "nope"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, tc.example, tc.file, false, tc.dot); err == nil {
				t.Error("expected error")
			}
		})
	}
}

// TestRunFile drives the -file path end to end through the parser.
func TestRunFile(t *testing.T) {
	src := `program filetest
var a[16]
var b[16]
region main loop k = 0 to 15 {
  a[k] = b[k] + 1
}
`
	path := filepath.Join(t.TempDir(), "prog.ril")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, "", path, false, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("program filetest")) {
		t.Errorf("unexpected output:\n%s", buf.String())
	}
}

// TestCallsGolden locks the interprocedural output: the procedure
// summary table plus the labeling of a region whose references all come
// from call expansion.
func TestCallsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", filepath.Join("testdata", "calls.ril"), true, ""); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "calls.golden", buf.Bytes())
}
