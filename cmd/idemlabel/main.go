// Command idemlabel runs the reference idempotency analysis on a program
// and prints every memory reference with its label, category, and the
// analysis evidence (RFW status, dependence sinks) — the compiler half of
// the paper as a standalone tool.
//
// Usage:
//
//	idemlabel -example fig1|fig2|fig3|buts     # the paper's worked examples
//	idemlabel -file prog.ril                   # a mini-language source file
//	idemlabel -deps                            # also dump the dependence list
package main

import (
	"flag"
	"fmt"
	"os"

	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/lang"
	"refidem/internal/report"
	"refidem/internal/viz"
	"refidem/internal/workloads"
)

func main() {
	example := flag.String("example", "", "run a built-in example: fig1, fig2, fig3, buts")
	file := flag.String("file", "", "mini-language source file to analyze")
	showDeps := flag.Bool("deps", false, "also print the may-dependence list")
	dot := flag.String("dot", "", "emit Graphviz instead of tables: \"segments\" or \"deps\"")
	flag.Parse()

	p, err := loadProgram(*example, *file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "idemlabel:", err)
		os.Exit(1)
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "idemlabel:", err)
		os.Exit(1)
	}
	labs := idem.LabelProgram(p)
	if *dot != "" {
		for _, r := range p.Regions {
			switch *dot {
			case "segments":
				fmt.Print(viz.SegmentGraphDOT(r))
			case "deps":
				fmt.Print(viz.DependenceGraphDOT(labs[r]))
			default:
				fmt.Fprintf(os.Stderr, "idemlabel: unknown -dot kind %q (want segments or deps)\n", *dot)
				os.Exit(1)
			}
		}
		return
	}
	fmt.Printf("program %s\n\n", p.Name)
	for _, r := range p.Regions {
		printRegion(p, r, labs[r], *showDeps)
	}
}

func loadProgram(example, file string) (*ir.Program, error) {
	switch {
	case example != "" && file != "":
		return nil, fmt.Errorf("use either -example or -file, not both")
	case example != "":
		switch example {
		case "fig1", "intro":
			return workloads.IntroExample(), nil
		case "fig2":
			return workloads.Figure2(), nil
		case "fig3":
			return workloads.Figure3(), nil
		case "buts", "fig4":
			return workloads.ButsDO1(8), nil
		default:
			return nil, fmt.Errorf("unknown example %q (want fig1, fig2, fig3, buts)", example)
		}
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return lang.Parse(string(src))
	default:
		return nil, fmt.Errorf("nothing to do: pass -example or -file (-h for help)")
	}
}

func printRegion(p *ir.Program, r *ir.Region, res *idem.Result, showDeps bool) {
	fmt.Printf("region %s (%s)", r.Name, r.Kind)
	if res.FullyIndependent {
		fmt.Print("  [fully independent: all references idempotent by Lemma 7]")
	}
	fmt.Println()

	t := report.NewTable("", "reference", "segment", "label", "category", "RFW", "cross-sink")
	for _, ref := range r.Refs {
		segName := fmt.Sprint(ref.SegID)
		if s := r.Seg(ref.SegID); s != nil && s.Name != "" {
			segName = s.Name
		}
		rfw := ""
		if ref.Access == ir.Write {
			rfw = fmt.Sprint(res.RFW.IsRFW[ref])
		}
		t.AddRowf(refText(ref), segName, res.Labels[ref], res.Categories[ref],
			rfw, fmt.Sprint(res.Deps.IsCrossSink(ref)))
	}
	fmt.Println(t.String())

	total, byCat := res.IdempotentFraction()
	fmt.Printf("static idempotent fraction: %.1f%%", total*100)
	for _, c := range []idem.Category{idem.CatReadOnly, idem.CatPrivate, idem.CatSharedDependent, idem.CatFullyIndependent} {
		if f := byCat[c]; f > 0 {
			fmt.Printf("  %s %.1f%%", c, f*100)
		}
	}
	fmt.Println()

	if showDeps {
		fmt.Println("\nmay-dependences:")
		for _, d := range res.Deps.All {
			fmt.Printf("  %s\n", d)
		}
	}
	fmt.Println()
}

func refText(ref *ir.Ref) string {
	s := ref.Var.Name
	if len(ref.Subs) > 0 {
		s += "["
		for i, sub := range ref.Subs {
			if i > 0 {
				s += ","
			}
			s += sub.String()
		}
		s += "]"
	}
	return fmt.Sprintf("%s %s", ref.Access, s)
}
