// Command idemlabel runs the reference idempotency analysis on a program
// and prints every memory reference with its label, category, and the
// analysis evidence (RFW status, dependence sinks) — the compiler half of
// the paper as a standalone tool.
//
// Usage:
//
//	idemlabel -example fig1|fig2|fig3|buts     # the paper's worked examples
//	idemlabel -file prog.ril                   # a mini-language source file
//	idemlabel -deps                            # also dump the dependence list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"refidem/internal/callgraph"
	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/lang"
	"refidem/internal/report"
	"refidem/internal/viz"
	"refidem/internal/workloads"
)

func main() {
	example := flag.String("example", "", "run a built-in example: fig1, fig2, fig3, buts")
	file := flag.String("file", "", "mini-language source file to analyze")
	showDeps := flag.Bool("deps", false, "also print the may-dependence list")
	dot := flag.String("dot", "", "emit Graphviz instead of tables: \"segments\" or \"deps\"")
	flag.Parse()

	if err := run(os.Stdout, *example, *file, *showDeps, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "idemlabel:", err)
		os.Exit(1)
	}
}

// run is the whole tool behind flag parsing and exit codes; the CLI tests
// drive it directly.
func run(w io.Writer, example, file string, showDeps bool, dot string) error {
	p, err := loadProgram(example, file)
	if err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}
	labs := idem.LabelProgram(p)
	if dot != "" {
		for _, r := range p.Regions {
			switch dot {
			case "segments":
				fmt.Fprint(w, viz.SegmentGraphDOT(r))
			case "deps":
				fmt.Fprint(w, viz.DependenceGraphDOT(labs[r]))
			default:
				return fmt.Errorf("unknown -dot kind %q (want segments or deps)", dot)
			}
		}
		return nil
	}
	fmt.Fprintf(w, "program %s\n\n", p.Name)
	if len(p.Procs) > 0 {
		printProcSummaries(w, p)
	}
	for _, r := range p.Regions {
		printRegion(w, p, r, labs[r], showDeps)
	}
	return nil
}

// printProcSummaries renders the bottom-up callgraph summaries: the
// interprocedural evidence (mod/ref sets, must-write-first effects,
// affine parameter binding, exit propagation) the labeling of
// call-containing regions rests on.
func printProcSummaries(w io.Writer, p *ir.Program) {
	cg := callgraph.Analyze(p)
	t := report.NewTable("", "proc", "params", "reads", "writes", "write-first", "affine-params", "may-exit")
	for _, pr := range p.Procs {
		sum := cg.Summary(pr)
		affine := make([]string, 0, len(pr.Params))
		for _, prm := range pr.Params {
			if sum.AffineParams[prm] {
				affine = append(affine, prm)
			}
		}
		t.AddRowf(pr.Name,
			strings.Join(pr.Params, ","),
			strings.Join(callgraph.VarNames(sum.Reads), ","),
			strings.Join(callgraph.VarNames(sum.Writes), ","),
			strings.Join(callgraph.VarNames(sum.MustWriteFirst), ","),
			strings.Join(affine, ","),
			fmt.Sprint(sum.MayExit))
	}
	fmt.Fprintln(w, "procedure summaries (bottom-up):")
	fmt.Fprintln(w, t.String())
	if cg.HasRecursion() {
		fmt.Fprintf(w, "recursive cycle: %s (conservative fallback labeling)\n", strings.Join(cg.Cycle(), " -> "))
	}
	fmt.Fprintln(w)
}

func loadProgram(example, file string) (*ir.Program, error) {
	switch {
	case example != "" && file != "":
		return nil, fmt.Errorf("use either -example or -file, not both")
	case example != "":
		switch example {
		case "fig1", "intro":
			return workloads.IntroExample(), nil
		case "fig2":
			return workloads.Figure2(), nil
		case "fig3":
			return workloads.Figure3(), nil
		case "buts", "fig4":
			return workloads.ButsDO1(8), nil
		default:
			return nil, fmt.Errorf("unknown example %q (want fig1, fig2, fig3, buts)", example)
		}
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return lang.Parse(string(src))
	default:
		return nil, fmt.Errorf("nothing to do: pass -example or -file (-h for help)")
	}
}

func printRegion(w io.Writer, p *ir.Program, r *ir.Region, res *idem.Result, showDeps bool) {
	fmt.Fprintf(w, "region %s (%s)", r.Name, r.Kind)
	if res.FullyIndependent {
		fmt.Fprint(w, "  [fully independent: all references idempotent by Lemma 7]")
	}
	fmt.Fprintln(w)

	t := report.NewTable("", "reference", "segment", "label", "category", "RFW", "cross-sink")
	for _, ref := range r.Refs {
		segName := fmt.Sprint(ref.SegID)
		if s := r.Seg(ref.SegID); s != nil && s.Name != "" {
			segName = s.Name
		}
		rfw := ""
		if ref.Access == ir.Write {
			rfw = fmt.Sprint(res.RFW.IsRFW(ref))
		}
		t.AddRowf(refText(ref), segName, res.Label(ref), res.Category(ref),
			rfw, fmt.Sprint(res.Deps.IsCrossSink(ref)))
	}
	fmt.Fprintln(w, t.String())

	total, byCat := res.IdempotentFraction()
	fmt.Fprintf(w, "static idempotent fraction: %.1f%%", total*100)
	for _, c := range []idem.Category{idem.CatReadOnly, idem.CatPrivate, idem.CatSharedDependent, idem.CatFullyIndependent} {
		if f := byCat[c]; f > 0 {
			fmt.Fprintf(w, "  %s %.1f%%", c, f*100)
		}
	}
	fmt.Fprintln(w)

	if showDeps {
		fmt.Fprintln(w, "\nmay-dependences:")
		for _, d := range res.Deps.All {
			fmt.Fprintf(w, "  %s\n", d)
		}
	}
	fmt.Fprintln(w)
}

func refText(ref *ir.Ref) string {
	s := ref.Var.Name
	if len(ref.Subs) > 0 {
		s += "["
		for i, sub := range ref.Subs {
			if i > 0 {
				s += ","
			}
			s += sub.String()
		}
		s += "]"
	}
	return fmt.Sprintf("%s %s", ref.Access, s)
}
